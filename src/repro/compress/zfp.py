"""ZFP-like fixed-accuracy compressor (block transform + coefficient coding).

Mirrors ZFP's structure (paper ref. [7]): the array is carved into 4^d
blocks, each block is decorrelated with a separable transform, and the
coefficients are quantized.  Two deliberate fidelity choices:

* the decorrelating transform is the *orthonormal* 4-point DCT-II rather
  than ZFP's fixed-point lifted transform — orthonormality gives an exact
  pointwise error guarantee (``max|e| <= ||e||_2 = ||coef err||_2``) with
  a closed-form step size, no verify loop needed;
* like real ZFP, only pointwise (fixed-accuracy) tolerances are
  supported; the paper's Fig. 8 notes ZFP has no L2 tolerance mode and the
  framework enforces the same restriction here.

Blocks are processed fully vectorized, which also reproduces ZFP's
operational profile: stable throughput across tolerance levels.
"""

from __future__ import annotations

import struct

import numpy as np

from ..exceptions import CompressionError
from .base import (
    CompressedBlob,
    Compressor,
    ErrorBoundMode,
    absolute_tolerance,
    guarded_pointwise_bound,
)
from .huffman import huffman_decode, huffman_encode

__all__ = ["ZFPCompressor"]

_BLOCK = 4


def _dct_matrix(n: int = _BLOCK) -> np.ndarray:
    """Orthonormal DCT-II matrix of size n."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    matrix = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    matrix[0] *= 1.0 / np.sqrt(2.0)
    return matrix * np.sqrt(2.0 / n)


_DCT = _dct_matrix()
_IDCT = _DCT.T


def _block_split(data: np.ndarray, block_dims: int) -> tuple[np.ndarray, tuple[int, ...]]:
    """Pad and reshape into ``(n_blocks, 4, [4, [4]])`` blocks.

    Blocking applies to the trailing ``block_dims`` axes; leading axes act
    as batch.  Edge padding replicates border values so padding is cheap
    to encode and cannot violate the error bound.
    """
    trailing = data.shape[-block_dims:]
    pad = [(0, 0)] * (data.ndim - block_dims) + [
        (0, (-size) % _BLOCK) for size in trailing
    ]
    padded = np.pad(data, pad, mode="edge")
    lead = padded.shape[: data.ndim - block_dims]
    counts = [size // _BLOCK for size in padded.shape[-block_dims:]]
    # interleave (count, 4) pairs then move the 4s last
    interleaved_shape = list(lead)
    for count in counts:
        interleaved_shape.extend([count, _BLOCK])
    reshaped = padded.reshape(interleaved_shape)
    lead_axes = list(range(len(lead)))
    count_axes = [len(lead) + 2 * i for i in range(block_dims)]
    block_axes = [len(lead) + 2 * i + 1 for i in range(block_dims)]
    transposed = reshaped.transpose(lead_axes + count_axes + block_axes)
    blocks = transposed.reshape((-1,) + (_BLOCK,) * block_dims)
    return np.ascontiguousarray(blocks), padded.shape


def _block_join(
    blocks: np.ndarray, padded_shape: tuple[int, ...], original_shape: tuple[int, ...], block_dims: int
) -> np.ndarray:
    """Inverse of :func:`_block_split`."""
    lead = padded_shape[: len(padded_shape) - block_dims]
    counts = [size // _BLOCK for size in padded_shape[-block_dims:]]
    shaped = blocks.reshape(tuple(lead) + tuple(counts) + (_BLOCK,) * block_dims)
    n_lead = len(lead)
    axes = list(range(n_lead))
    for i in range(block_dims):
        axes.extend([n_lead + i, n_lead + block_dims + i])
    padded = shaped.transpose(axes).reshape(padded_shape)
    crop = tuple(slice(0, size) for size in original_shape)
    return padded[crop]


def _transform(blocks: np.ndarray, matrix: np.ndarray, block_dims: int) -> np.ndarray:
    """Apply ``matrix`` along each of the trailing block axes."""
    out = blocks
    for axis in range(1, block_dims + 1):
        out = np.moveaxis(np.tensordot(out, matrix, axes=([axis], [1])), -1, axis)
    return out


class ZFPCompressor(Compressor):
    """Block-transform codec with fixed-accuracy (pointwise) error control.

    Like real ZFP, a *fixed-rate* mode is also available
    (:meth:`compress_fixed_rate`): instead of an error tolerance, the
    caller fixes the bits-per-value budget and the codec delivers the best
    accuracy it can within it — the mode HPC codes use when the output
    size must be known in advance.
    """

    name = "zfp"
    supported_modes = frozenset({ErrorBoundMode.ABS, ErrorBoundMode.REL})

    def __init__(self, max_alphabet: int = 4096) -> None:
        self.max_alphabet = int(max_alphabet)

    def compress_fixed_rate(
        self, data: np.ndarray, bits_per_value: float, tolerance_hint: float = 1e-1
    ) -> CompressedBlob:
        """Fixed-rate compression: target a bits-per-value budget.

        Searches the accuracy knob until the payload meets the requested
        rate (like ZFP's fixed-rate mode, the achieved accuracy is
        whatever the budget affords).  Returns a blob decodable by
        :meth:`decompress`; its ``metadata['achieved_bpv']`` records the
        realized rate.
        """
        data = np.asarray(data)
        if bits_per_value <= 0:
            raise CompressionError("bits_per_value must be positive")
        budget_bytes = bits_per_value * data.size / 8.0
        tolerance = float(tolerance_hint)
        blob = self.compress(data, tolerance, ErrorBoundMode.REL)
        for __ in range(24):
            if blob.nbytes <= budget_bytes:
                break
            tolerance *= 2.0
            blob = self.compress(data, tolerance, ErrorBoundMode.REL)
        else:
            raise CompressionError(
                f"cannot reach {bits_per_value} bits/value on this data"
            )
        # tighten back down while the budget still holds
        while tolerance > 1e-12:
            candidate = self.compress(data, tolerance / 2.0, ErrorBoundMode.REL)
            if candidate.nbytes > budget_bytes:
                break
            blob = candidate
            tolerance /= 2.0
        blob.metadata["achieved_bpv"] = 8.0 * blob.nbytes / data.size
        blob.metadata["fixed_rate"] = bits_per_value
        return blob

    @staticmethod
    def _block_dims(ndim: int) -> int:
        if ndim == 0:
            raise CompressionError("cannot compress a scalar")
        return min(ndim, 3)

    def _compress(
        self,
        data: np.ndarray,
        tolerance: float,
        mode: ErrorBoundMode = ErrorBoundMode.ABS,
    ) -> CompressedBlob:
        self._check_mode(mode)
        data = np.asarray(data)
        work = data.astype(np.float64)
        eb = guarded_pointwise_bound(data, absolute_tolerance(work, tolerance, mode))
        if eb <= 0.0:
            return self._lossless_blob(data, tolerance, mode)
        block_dims = self._block_dims(work.ndim)
        blocks, padded_shape = _block_split(work, block_dims)
        coefficients = _transform(blocks, _DCT, block_dims)
        # Orthonormal transform: pointwise error <= l2 coefficient error
        # <= sqrt(K) * step / 2 with K coefficients per block.
        k = _BLOCK**block_dims
        step = 2.0 * eb / np.sqrt(k)
        codes = np.round(coefficients / step).astype(np.int64)
        entropy = huffman_encode(codes.ravel(), max_alphabet=self.max_alphabet)
        header = struct.pack("<dB", step, block_dims)
        return CompressedBlob(
            codec=self.name,
            payload=header + entropy,
            shape=data.shape,
            dtype=str(data.dtype),
            mode=mode,
            tolerance=float(tolerance),
            metadata={"eb": eb, "padded_shape": padded_shape},
        )

    def _decompress(self, blob: CompressedBlob) -> np.ndarray:
        self._check_blob(blob)
        if blob.metadata.get("lossless"):
            return self._decompress_lossless(blob)
        step, block_dims = struct.unpack_from("<dB", blob.payload, 0)
        offset = struct.calcsize("<dB")
        codes = huffman_decode(blob.payload[offset:])
        original_shape = blob.shape
        trailing = original_shape[len(original_shape) - block_dims :]
        padded_trailing = tuple(size + (-size) % _BLOCK for size in trailing)
        padded_shape = original_shape[: len(original_shape) - block_dims] + padded_trailing
        n_blocks = int(np.prod(padded_shape)) // (_BLOCK**block_dims)
        coefficients = (
            codes.astype(np.float64).reshape((n_blocks,) + (_BLOCK,) * block_dims) * step
        )
        blocks = _transform(coefficients, _IDCT, block_dims)
        return _block_join(blocks, padded_shape, original_shape, block_dims).astype(blob.dtype)
