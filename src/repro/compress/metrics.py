"""Error and ratio metrics for compressed reconstructions."""

from __future__ import annotations

import numpy as np

from .base import CompressedBlob, ErrorBoundMode

__all__ = ["achieved_error", "verify_tolerance", "psnr", "compression_ratio"]


def achieved_error(
    original: np.ndarray, reconstruction: np.ndarray, mode: ErrorBoundMode
) -> float:
    """Reconstruction error in the units of the given mode."""
    original = np.asarray(original, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    error = reconstruction - original
    if mode is ErrorBoundMode.ABS:
        return float(np.max(np.abs(error))) if error.size else 0.0
    if mode is ErrorBoundMode.REL:
        value_range = float(original.max() - original.min()) if original.size else 0.0
        peak = float(np.max(np.abs(error))) if error.size else 0.0
        return peak / value_range if value_range > 0 else peak
    if mode is ErrorBoundMode.L2_ABS:
        return float(np.linalg.norm(error))
    if mode is ErrorBoundMode.L2_REL:
        norm = float(np.linalg.norm(original))
        return float(np.linalg.norm(error)) / norm if norm > 0 else float(np.linalg.norm(error))
    raise ValueError(f"unknown mode {mode!r}")


def verify_tolerance(
    original: np.ndarray,
    reconstruction: np.ndarray,
    tolerance: float,
    mode: ErrorBoundMode,
    slack: float = 1.0 + 1e-9,
) -> bool:
    """True when the reconstruction honours the tolerance contract."""
    return achieved_error(original, reconstruction, mode) <= tolerance * slack


def psnr(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (inf for exact reconstructions)."""
    original = np.asarray(original, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    mse = float(np.mean((original - reconstruction) ** 2))
    if mse == 0.0:
        return float("inf")
    value_range = float(original.max() - original.min())
    if value_range == 0.0:
        return float("inf")
    return 20.0 * np.log10(value_range) - 10.0 * np.log10(mse)


def compression_ratio(original: np.ndarray, blob: CompressedBlob) -> float:
    """Original bytes over compressed bytes."""
    original = np.asarray(original)
    if blob.nbytes == 0:
        return float("inf")
    return original.nbytes / blob.nbytes
