"""Canonical Huffman coding over integer symbols.

This is the entropy stage shared by the SZ-, ZFP- and MGARD-like codecs.
Design points:

* **canonical codes** — only code lengths are stored; codes are re-derived
  on decode, keeping headers small;
* **length-limited to 16 bits** — decoding uses a single 65536-entry
  lookup table, one table hit per symbol;
* **escape symbol** — alphabets are capped (quantization codes follow a
  sharply peaked distribution); rare symbols are emitted as an escape code
  followed by a raw 32-bit value, so pathological inputs cannot blow up
  the table.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from ..exceptions import CompressionError
from .bitstream import pack_codes

__all__ = ["huffman_encode", "huffman_decode"]

_MAX_CODE_LENGTH = 16
_MAGIC = b"HUF1"
_ESCAPE = -(2**31)  # sentinel symbol id for escaped values


def _code_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Huffman code lengths per symbol, length-limited to 16 bits."""
    if len(frequencies) == 1:
        return {next(iter(frequencies)): 1}
    heap: list[tuple[int, int, list[int]]] = []
    for tiebreak, (symbol, freq) in enumerate(sorted(frequencies.items())):
        heapq.heappush(heap, (freq, tiebreak, [symbol]))
    lengths = {symbol: 0 for symbol in frequencies}
    counter = len(frequencies)
    while len(heap) > 1:
        f1, __, group1 = heapq.heappop(heap)
        f2, __, group2 = heapq.heappop(heap)
        for symbol in group1 + group2:
            lengths[symbol] += 1
        counter += 1
        heapq.heappush(heap, (f1 + f2, counter, group1 + group2))
    # Length-limit: clamp overlong codes, then restore the Kraft sum by
    # deepening the shallowest cheap symbols (zlib-style fix-up).
    capped = {s: min(l, _MAX_CODE_LENGTH) for s, l in lengths.items()}
    kraft = sum(2 ** (_MAX_CODE_LENGTH - l) for l in capped.values())
    budget = 2**_MAX_CODE_LENGTH
    if kraft > budget:
        # Deepen symbols ordered by ascending frequency so common symbols
        # keep short codes.
        order = sorted(capped, key=lambda s: (frequencies[s], s))
        index = 0
        while kraft > budget:
            symbol = order[index % len(order)]
            index += 1
            if capped[symbol] < _MAX_CODE_LENGTH:
                kraft -= 2 ** (_MAX_CODE_LENGTH - capped[symbol] - 1)
                capped[symbol] += 1
    return capped


def _canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Assign canonical (code, length) pairs sorted by (length, symbol)."""
    code = 0
    previous_length = 0
    table: dict[int, tuple[int, int]] = {}
    for symbol, length in sorted(lengths.items(), key=lambda item: (item[1], item[0])):
        code <<= length - previous_length
        table[symbol] = (code, length)
        code += 1
        previous_length = length
    return table


def huffman_encode(symbols: np.ndarray, max_alphabet: int = 4096) -> bytes:
    """Encode an integer array into a self-contained blob.

    Symbols outside the ``max_alphabet`` most frequent values are escaped
    (raw 32-bit two's complement after an escape code).
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    n = symbols.size
    if n == 0:
        return _MAGIC + struct.pack("<IH", 0, 0)
    unique, inverse, counts = np.unique(symbols, return_inverse=True, return_counts=True)
    if np.any(np.abs(unique) >= 2**31):
        raise CompressionError("huffman symbols must fit in int32")
    keep = np.argsort(counts)[::-1][: max_alphabet - 1]
    kept_symbols = set(int(unique[i]) for i in keep)
    frequencies: dict[int, int] = {
        int(unique[i]): int(counts[i]) for i in keep
    }
    n_escaped = n - sum(frequencies.values())
    if n_escaped > 0:
        frequencies[_ESCAPE] = n_escaped
    lengths = _code_lengths(frequencies)
    codes = _canonical_codes(lengths)

    # Vectorized mapping: per-unique code/length, ESCAPE where dropped.
    escape_code, escape_length = codes.get(_ESCAPE, (0, 0))
    unique_code = np.empty(unique.size, dtype=np.uint64)
    unique_length = np.empty(unique.size, dtype=np.int64)
    for i, symbol in enumerate(unique):
        entry = codes.get(int(symbol))
        if entry is None:
            unique_code[i], unique_length[i] = escape_code, escape_length
        else:
            unique_code[i], unique_length[i] = entry
    values = unique_code[inverse]
    value_lengths = unique_length[inverse]

    if n_escaped > 0:
        # Append the raw 32-bit value after each escape code.
        escaped_mask = ~np.isin(symbols, np.fromiter(kept_symbols, dtype=np.int64))
        raw = (symbols[escaped_mask].astype(np.int64) & 0xFFFFFFFF).astype(np.uint64)
        merged_values = np.empty(n + int(escaped_mask.sum()), dtype=np.uint64)
        merged_lengths = np.empty_like(merged_values, dtype=np.int64)
        positions = np.arange(n) + np.cumsum(escaped_mask) - escaped_mask
        merged_values[positions] = values
        merged_lengths[positions] = value_lengths
        raw_positions = positions[escaped_mask] + 1
        merged_values[raw_positions] = raw
        merged_lengths[raw_positions] = 32
        values, value_lengths = merged_values, merged_lengths

    payload, total_bits = pack_codes(values, value_lengths)
    header = [_MAGIC, struct.pack("<IH", n, len(lengths))]
    for symbol, length in sorted(lengths.items(), key=lambda item: (item[1], item[0])):
        header.append(struct.pack("<iB", symbol, length))
    header.append(struct.pack("<Q", total_bits))
    return b"".join(header) + payload


def huffman_decode(blob: bytes) -> np.ndarray:
    """Decode a blob produced by :func:`huffman_encode`."""
    if blob[:4] != _MAGIC:
        raise CompressionError("bad huffman magic")
    n, n_alphabet = struct.unpack_from("<IH", blob, 4)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    offset = 10
    lengths: dict[int, int] = {}
    for __ in range(n_alphabet):
        symbol, length = struct.unpack_from("<iB", blob, offset)
        lengths[symbol] = length
        offset += 5
    (total_bits,) = struct.unpack_from("<Q", blob, offset)
    offset += 8
    codes = _canonical_codes(lengths)

    # 16-bit prefix lookup table: prefix -> (symbol, length).
    table_symbol = np.zeros(2**_MAX_CODE_LENGTH, dtype=np.int64)
    table_length = np.zeros(2**_MAX_CODE_LENGTH, dtype=np.int64)
    for symbol, (code, length) in codes.items():
        start = code << (_MAX_CODE_LENGTH - length)
        end = (code + 1) << (_MAX_CODE_LENGTH - length)
        table_symbol[start:end] = symbol
        table_length[start:end] = length

    bits = np.unpackbits(np.frombuffer(blob[offset:], dtype=np.uint8))
    if bits.size < total_bits:
        raise CompressionError("huffman payload truncated")
    # Sliding 16-bit window values for every bit offset.
    padded = np.concatenate([bits, np.zeros(_MAX_CODE_LENGTH, dtype=np.uint8)])
    window = np.zeros(total_bits + 1, dtype=np.uint32)
    for j in range(_MAX_CODE_LENGTH):
        window[: total_bits + 1] |= padded[j : j + total_bits + 1].astype(np.uint32) << (
            _MAX_CODE_LENGTH - 1 - j
        )

    out = np.empty(n, dtype=np.int64)
    position = 0
    symbols_view = table_symbol
    lengths_view = table_length
    for i in range(n):
        prefix = window[position]
        symbol = symbols_view[prefix]
        position += lengths_view[prefix]
        if symbol == _ESCAPE:
            raw = (int(window[position]) << 16) | int(window[position + 16])
            position += 32
            if raw >= 2**31:
                raw -= 2**32
            symbol = raw
        out[i] = symbol
    if position != total_bits:
        raise CompressionError(
            f"huffman stream misaligned: consumed {position} of {total_bits} bits"
        )
    return out
