"""Canonical Huffman coding over integer symbols.

This is the entropy stage shared by the SZ-, ZFP- and MGARD-like codecs.
Design points:

* **canonical codes** — only code lengths are stored; codes are re-derived
  on decode, keeping headers small;
* **length-limited to 16 bits** — decoding uses a single 65536-entry
  lookup table, one table hit per symbol;
* **escape symbol** — alphabets are capped (quantization codes follow a
  sharply peaked distribution); rare symbols are emitted as an escape code
  followed by a raw 32-bit value, so pathological inputs cannot blow up
  the table;
* **vectorized decode** — instead of a per-symbol Python loop, the
  decoder gathers the 16-bit prefix window of *every* bit offset at once,
  turns the prefix table into a next-position function, composes it into
  a 16-symbol jump table by pointer doubling, walks block starts
  sequentially (``n/16`` cheap iterations) and expands within blocks
  columnwise.  Escapes resolve in a masked second pass.  The original
  scalar decoder is retained as :func:`_decode_reference`; property tests
  assert bit-exact agreement.

Decode tables (65536-entry symbol/advance arrays) are memoized on the
lengths header via :mod:`repro.perf.cache`, so chunked streams sharing a
code table build it once.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from ..exceptions import CompressionError
from ..perf.cache import get_memo
from .bitstream import pack_codes

__all__ = ["huffman_encode", "huffman_decode"]

_MAX_CODE_LENGTH = 16
_MAGIC = b"HUF1"
_ESCAPE = -(2**31)  # sentinel symbol id for escaped values

#: slack past the end of the bit positions array: strictly larger than the
#: largest single-symbol advance (16-bit code + 32 raw bits), so composed
#: jumps from any in-stream position stay in bounds without clamping.
_PAD = 64


def _code_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Huffman code lengths per symbol, length-limited to 16 bits."""
    if len(frequencies) == 1:
        return {next(iter(frequencies)): 1}
    heap: list[tuple[int, int, list[int]]] = []
    for tiebreak, (symbol, freq) in enumerate(sorted(frequencies.items())):
        heapq.heappush(heap, (freq, tiebreak, [symbol]))
    lengths = {symbol: 0 for symbol in frequencies}
    counter = len(frequencies)
    while len(heap) > 1:
        f1, __, group1 = heapq.heappop(heap)
        f2, __, group2 = heapq.heappop(heap)
        for symbol in group1 + group2:
            lengths[symbol] += 1
        counter += 1
        heapq.heappush(heap, (f1 + f2, counter, group1 + group2))
    # Length-limit: clamp overlong codes, then restore the Kraft sum by
    # deepening the shallowest cheap symbols (zlib-style fix-up).
    capped = {s: min(l, _MAX_CODE_LENGTH) for s, l in lengths.items()}
    kraft = sum(2 ** (_MAX_CODE_LENGTH - l) for l in capped.values())
    budget = 2**_MAX_CODE_LENGTH
    if kraft > budget:
        # Deepen symbols ordered by ascending frequency so common symbols
        # keep short codes.
        order = sorted(capped, key=lambda s: (frequencies[s], s))
        index = 0
        while kraft > budget:
            symbol = order[index % len(order)]
            index += 1
            if capped[symbol] < _MAX_CODE_LENGTH:
                kraft -= 2 ** (_MAX_CODE_LENGTH - capped[symbol] - 1)
                capped[symbol] += 1
    return capped


def _canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Assign canonical (code, length) pairs sorted by (length, symbol)."""
    code = 0
    previous_length = 0
    table: dict[int, tuple[int, int]] = {}
    for symbol, length in sorted(lengths.items(), key=lambda item: (item[1], item[0])):
        code <<= length - previous_length
        table[symbol] = (code, length)
        code += 1
        previous_length = length
    return table


def huffman_encode(symbols: np.ndarray, max_alphabet: int = 4096) -> bytes:
    """Encode an integer array into a self-contained blob.

    Symbols outside the ``max_alphabet`` most frequent values are escaped
    (raw 32-bit two's complement after an escape code).
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    n = symbols.size
    if n == 0:
        return _MAGIC + struct.pack("<IH", 0, 0)
    unique, inverse, counts = np.unique(symbols, return_inverse=True, return_counts=True)
    if np.any(np.abs(unique) >= 2**31):
        raise CompressionError("huffman symbols must fit in int32")
    keep = np.argsort(counts)[::-1][: max_alphabet - 1]
    kept_unique = np.zeros(unique.size, dtype=bool)
    kept_unique[keep] = True
    frequencies: dict[int, int] = {
        int(unique[i]): int(counts[i]) for i in keep
    }
    n_escaped = n - sum(frequencies.values())
    if n_escaped > 0:
        frequencies[_ESCAPE] = n_escaped
    lengths = _code_lengths(frequencies)
    codes = _canonical_codes(lengths)

    # Vectorized mapping: per-unique code/length, ESCAPE where dropped.
    escape_code, escape_length = codes.get(_ESCAPE, (0, 0))
    unique_code = np.empty(unique.size, dtype=np.uint64)
    unique_length = np.empty(unique.size, dtype=np.int64)
    for i, symbol in enumerate(unique):
        entry = codes.get(int(symbol))
        if entry is None:
            unique_code[i], unique_length[i] = escape_code, escape_length
        else:
            unique_code[i], unique_length[i] = entry
    values = unique_code[inverse]
    value_lengths = unique_length[inverse]

    if n_escaped > 0:
        # Append the raw 32-bit value after each escape code.
        escaped_mask = ~kept_unique[inverse]
        raw = (symbols[escaped_mask].astype(np.int64) & 0xFFFFFFFF).astype(np.uint64)
        merged_values = np.empty(n + int(escaped_mask.sum()), dtype=np.uint64)
        merged_lengths = np.empty_like(merged_values, dtype=np.int64)
        positions = np.arange(n) + np.cumsum(escaped_mask) - escaped_mask
        merged_values[positions] = values
        merged_lengths[positions] = value_lengths
        raw_positions = positions[escaped_mask] + 1
        merged_values[raw_positions] = raw
        merged_lengths[raw_positions] = 32
        values, value_lengths = merged_values, merged_lengths

    payload, total_bits = pack_codes(values, value_lengths)
    header = [_MAGIC, struct.pack("<IH", n, len(lengths))]
    for symbol, length in sorted(lengths.items(), key=lambda item: (item[1], item[0])):
        header.append(struct.pack("<iB", symbol, length))
    header.append(struct.pack("<Q", total_bits))
    return b"".join(header) + payload


def _build_decode_tables(
    lengths: dict[int, int]
) -> tuple[np.ndarray, np.ndarray, int | None]:
    """65536-entry prefix tables: symbol, fused position advance, escape len.

    ``advance`` folds the escape's trailing 32 raw bits into the code
    length, so one gather per bit position yields the full next-position
    function regardless of escapes.
    """
    codes = _canonical_codes(lengths)
    table_symbol = np.zeros(2**_MAX_CODE_LENGTH, dtype=np.int32)
    advance = np.zeros(2**_MAX_CODE_LENGTH, dtype=np.int32)
    escape_length: int | None = None
    for symbol, (code, length) in codes.items():
        start = code << (_MAX_CODE_LENGTH - length)
        end = (code + 1) << (_MAX_CODE_LENGTH - length)
        table_symbol[start:end] = symbol
        if symbol == _ESCAPE:
            escape_length = length
            advance[start:end] = length + 32
        else:
            advance[start:end] = length
    return table_symbol, advance, escape_length


def _decode_tables_for_header(header: bytes, n_alphabet: int):
    """Cached decode tables keyed by the raw lengths header bytes."""

    def build():
        lengths: dict[int, int] = {}
        offset = 0
        for __ in range(n_alphabet):
            symbol, length = struct.unpack_from("<iB", header, offset)
            lengths[symbol] = length
            offset += 5
        return _build_decode_tables(lengths)

    return get_memo("huffman_tables", maxsize=64).get(bytes(header), build)


def huffman_decode(blob: bytes) -> np.ndarray:
    """Decode a blob produced by :func:`huffman_encode` (vectorized)."""
    if blob[:4] != _MAGIC:
        raise CompressionError("bad huffman magic")
    n, n_alphabet = struct.unpack_from("<IH", blob, 4)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    offset = 10 + 5 * n_alphabet
    table_symbol, advance, escape_length = _decode_tables_for_header(
        blob[10:offset], n_alphabet
    )
    (total_bits,) = struct.unpack_from("<Q", blob, offset)
    offset += 8
    if total_bits >= 2**31 - _PAD:
        # int32 position arithmetic would overflow; take the scalar path.
        return _decode_reference(blob)

    payload = np.frombuffer(blob, dtype=np.uint8, offset=offset)
    if payload.size * 8 < total_bits:
        raise CompressionError("huffman payload truncated")

    # 32-bit big-endian window at every byte offset; the 16-bit prefix at
    # bit position p is then (V32[p >> 3] >> (16 - (p & 7))) & 0xFFFF.
    padded = np.concatenate(
        [payload, np.zeros(_PAD // 8 + 8, dtype=np.uint8)]
    ).astype(np.uint32)
    v32 = (
        (padded[:-3] << np.uint32(24))
        | (padded[1:-2] << np.uint32(16))
        | (padded[2:-1] << np.uint32(8))
        | padded[3:]
    )

    length = int(total_bits) + _PAD
    pos = np.arange(length, dtype=np.int32)
    # All gathers below use mode="clip": indices are in bounds by
    # construction (the absorbing state keeps composed jumps under
    # length), and skipping numpy's per-element bounds check is ~30%
    # faster; a corrupt stream clamps into the absorbing region and is
    # caught by the final alignment check.
    window = (
        np.take(v32, pos >> 3, mode="clip")
        >> (np.int32(16) - (pos & 7)).astype(np.uint32)
    ) & np.uint32(0xFFFF)

    # Next-position function over every bit offset; positions at or past
    # the stream end collapse into an absorbing overrun state so corrupt
    # walks terminate and fail the final alignment check.
    nxt = pos + np.take(advance, window, mode="clip")
    nxt[total_bits:] = total_bits + 1

    # Pointer doubling: nxt -> nxt^2 -> nxt^4 -> nxt^8 -> nxt^16, ping-
    # ponging between two buffers so each squaring is a single gather.
    jump = np.take(nxt, nxt, mode="clip")
    scratch = np.empty_like(jump)
    for __ in range(3):
        np.take(jump, jump, out=scratch, mode="clip")
        jump, scratch = scratch, jump

    # Sequential part, shrunk 16x: walk one block start per 16 symbols.
    block = 16
    n_blocks = (n + block - 1) // block
    item = jump.item
    start_list = [0] * n_blocks
    p = 0
    for k in range(n_blocks):
        start_list[k] = p
        p = item(p)

    # Within-block expansion, one row per symbol offset (contiguous
    # writes); row j holds the position of symbol 16*k + j for every k.
    rows = np.empty((block, n_blocks), dtype=np.int32)
    rows[0] = start_list
    for j in range(1, block):
        np.take(nxt, rows[j - 1], out=rows[j], mode="clip")
    positions = rows.T.reshape(-1)[:n]

    symbols = np.take(table_symbol, np.take(window, positions, mode="clip"), mode="clip")
    out = symbols.astype(np.int64)

    if escape_length is not None:
        escaped = symbols == np.int32(_ESCAPE)
        if escaped.any():
            raw_start = positions[escaped].astype(np.int64) + escape_length
            raw = (np.take(window, raw_start, mode="clip").astype(np.int64) << 16) | np.take(
                window, raw_start + 16, mode="clip"
            )
            out[escaped] = np.where(raw >= 2**31, raw - 2**32, raw)

    consumed = int(nxt[int(positions[-1])])
    if consumed != total_bits:
        raise CompressionError(
            f"huffman stream misaligned: consumed {consumed} of {total_bits} bits"
        )
    return out


def _decode_reference(blob: bytes) -> np.ndarray:
    """The original scalar decoder, one table hit per symbol.

    Kept as the ground truth for the vectorized path: property tests
    assert :func:`huffman_decode` is bit-exact against it, and it serves
    as the fallback for streams too large for int32 position arithmetic.
    """
    if blob[:4] != _MAGIC:
        raise CompressionError("bad huffman magic")
    n, n_alphabet = struct.unpack_from("<IH", blob, 4)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    offset = 10
    lengths: dict[int, int] = {}
    for __ in range(n_alphabet):
        symbol, length = struct.unpack_from("<iB", blob, offset)
        lengths[symbol] = length
        offset += 5
    (total_bits,) = struct.unpack_from("<Q", blob, offset)
    offset += 8
    codes = _canonical_codes(lengths)

    # 16-bit prefix lookup table: prefix -> (symbol, length).
    table_symbol = np.zeros(2**_MAX_CODE_LENGTH, dtype=np.int64)
    table_length = np.zeros(2**_MAX_CODE_LENGTH, dtype=np.int64)
    for symbol, (code, length) in codes.items():
        start = code << (_MAX_CODE_LENGTH - length)
        end = (code + 1) << (_MAX_CODE_LENGTH - length)
        table_symbol[start:end] = symbol
        table_length[start:end] = length

    bits = np.unpackbits(np.frombuffer(blob[offset:], dtype=np.uint8))
    if bits.size < total_bits:
        raise CompressionError("huffman payload truncated")
    # Sliding 16-bit window values for every bit offset.
    padded = np.concatenate([bits, np.zeros(_MAX_CODE_LENGTH, dtype=np.uint8)])
    window = np.zeros(total_bits + 1, dtype=np.uint32)
    for j in range(_MAX_CODE_LENGTH):
        window[: total_bits + 1] |= padded[j : j + total_bits + 1].astype(np.uint32) << (
            _MAX_CODE_LENGTH - 1 - j
        )

    out = np.empty(n, dtype=np.int64)
    position = 0
    symbols_view = table_symbol
    lengths_view = table_length
    for i in range(n):
        prefix = window[position]
        symbol = symbols_view[prefix]
        position += lengths_view[prefix]
        if symbol == _ESCAPE:
            raw = (int(window[position]) << 16) | int(window[position + 16])
            position += 32
            if raw >= 2**31:
                raw -= 2**32
            symbol = raw
        out[i] = symbol
    if position != total_bits:
        raise CompressionError(
            f"huffman stream misaligned: consumed {position} of {total_bits} bits"
        )
    return out
