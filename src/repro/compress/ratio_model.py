"""Compression-ratio estimation across error bounds (paper ref. [28]).

The planner needs ratio-vs-tolerance curves to predict I/O throughput
without actually compressing at every candidate tolerance.  Following the
modeling idea of Wang et al. ("Compression ratio modeling and estimation
across error bounds for lossy compression", TPDS 2019 — the paper's
ref. [28]), the estimator predicts the entropy of the quantization codes
directly from the data's prediction-residual distribution:

1. run the codec's *prediction* stage once (cheap, no entropy coding);
2. for any error bound ``eb``, the quantization codes are
   ``round(residual / 2 eb)`` — their Shannon entropy is computable from
   the residual histogram alone;
3. estimated bits/value = code entropy + per-value overheads, so
   ``ratio(eb) ~ input_bits / bits_per_value``.

The estimate runs in milliseconds per tolerance and tracks the measured
ratios of the SZ codec (which shares the predictor) within tens of
percent across the tolerance sweep — enough to rank configurations.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CompressionError
from .sz import SZCompressor, _predict, _refinement_plan

__all__ = ["RatioEstimator"]


def _exact_residuals(data: np.ndarray, codec: SZCompressor) -> tuple[np.ndarray, int]:
    """Prediction residuals of the codec's hierarchy, without quantization.

    Walks the same refinement plan as the encoder but reconstructs each
    level exactly, so the collected residuals are the true prediction
    errors whose quantization-code entropy the estimator models.
    """
    recon = data.copy()
    shape = data.shape
    anchor_sel = tuple(slice(0, size, codec.anchor_stride) for size in shape)
    n_anchors = int(recon[anchor_sel].size)
    residual_parts: list[np.ndarray] = []
    for axis, stride in _refinement_plan(shape, codec.anchor_stride):
        if codec.interpolation == "dynamic":
            target, linear_pred = _predict(recon, axis, stride, cubic=False)
            __, cubic_pred = _predict(recon, axis, stride, cubic=True)
            truth = data[target]
            if float(np.abs(truth - cubic_pred).sum()) < float(
                np.abs(truth - linear_pred).sum()
            ):
                prediction = cubic_pred
            else:
                prediction = linear_pred
        else:
            target, prediction = _predict(
                recon, axis, stride, cubic=codec.interpolation == "cubic"
            )
            truth = data[target]
        residual_parts.append((truth - prediction).ravel())
    residuals = (
        np.concatenate(residual_parts) if residual_parts else np.empty(0)
    )
    return residuals, n_anchors


class RatioEstimator:
    """Entropy-based compression-ratio prediction for SZ-style codecs.

    Parameters
    ----------
    data:
        The array whose compressibility is being modeled.
    codec:
        Codec whose prediction stage defines the residuals; defaults to a
        dynamic-spline :class:`SZCompressor`.
    """

    def __init__(self, data: np.ndarray, codec: SZCompressor | None = None) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            raise CompressionError("cannot model an empty array")
        if codec is None:
            codec = SZCompressor()
        self.codec = codec
        self.n_values = data.size
        residuals, n_anchors = _exact_residuals(data, codec)
        self._residuals = np.abs(residuals)
        self._anchor_bits = n_anchors * 64

    def bits_per_value(self, tolerance: float) -> float:
        """Predicted entropy-coded bits per value at a pointwise bound."""
        if tolerance <= 0:
            raise CompressionError("tolerance must be positive")
        codes = np.round(self._residuals / (2.0 * tolerance))
        __, counts = np.unique(codes, return_counts=True)
        n_codes = codes.size
        max_alphabet = self.codec.max_alphabet
        if counts.size >= max_alphabet:
            # model the Huffman escape path: rare symbols beyond the
            # alphabet cap collapse into one ESCAPE symbol plus a raw
            # 32-bit value each
            order = np.sort(counts)[::-1]
            kept = order[: max_alphabet - 1]
            escaped = float(order[max_alphabet - 1 :].sum())
            probabilities = np.concatenate([kept, [escaped]]) / n_codes
            escape_probability = escaped / n_codes
        else:
            probabilities = counts / n_codes
            escape_probability = 0.0
        probabilities = probabilities[probabilities > 0]
        entropy = float(-(probabilities * np.log2(probabilities)).sum())
        per_value = max(entropy, 1.0 / 8.0) + 32.0 * escape_probability
        # canonical-Huffman integer code lengths cost a few percent over
        # the entropy; the table and stream constants amortize per value
        per_value *= 1.03
        overhead = (self._anchor_bits + 512.0 + 40.0 * min(counts.size, max_alphabet)) / (
            self.n_values
        )
        return per_value + overhead

    def ratio(self, tolerance: float) -> float:
        """Predicted compression ratio at a pointwise bound."""
        source_bits = 32.0  # scientific data ships as float32
        return source_bits / self.bits_per_value(tolerance)

    def ratio_curve(self, tolerances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`ratio` over a tolerance sweep."""
        return np.asarray([self.ratio(float(t)) for t in tolerances])
