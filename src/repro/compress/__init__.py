"""Error-bounded lossy compression substrate (SZ-, ZFP- and MGARD-like).

All codecs honour the :class:`~repro.compress.base.ErrorBoundMode`
contract: the reconstruction error never exceeds the requested tolerance
in the requested norm.  ZFP supports pointwise modes only, matching the
real codec (and the paper's Fig. 8 note).
"""

from .base import CompressedBlob, Compressor, ErrorBoundMode, absolute_tolerance
from .huffman import huffman_decode, huffman_encode
from .metrics import achieved_error, compression_ratio, psnr, verify_tolerance
from .mgard import MGARDCompressor
from .ratio_model import RatioEstimator
from .sz import SZCompressor
from .zfp import ZFPCompressor

__all__ = [
    "CompressedBlob",
    "Compressor",
    "ErrorBoundMode",
    "MGARDCompressor",
    "RatioEstimator",
    "SZCompressor",
    "ZFPCompressor",
    "absolute_tolerance",
    "achieved_error",
    "compression_ratio",
    "get_compressor",
    "huffman_decode",
    "huffman_encode",
    "psnr",
    "verify_tolerance",
]

_COMPRESSORS = {
    "sz": SZCompressor,
    "zfp": ZFPCompressor,
    "mgard": MGARDCompressor,
}


def get_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a codec by registry name (``sz``, ``zfp``, ``mgard``)."""
    try:
        return _COMPRESSORS[name.lower()](**kwargs)
    except KeyError:
        known = ", ".join(sorted(_COMPRESSORS))
        raise ValueError(f"unknown compressor {name!r}; known: {known}") from None
