"""MGARD-like multilevel compressor (lifted wavelet + level-weighted quant).

Follows the multigrid decomposition idea of MGARD (paper refs. [26],
[27]): the array is decomposed into a coarse approximation plus detail
(multilevel surplus) coefficients via a lifted piecewise-linear transform
— predict (linear interpolation) followed by an update step that keeps
coarse levels close to L2 projections, which is the property that lets
MGARD control norm-based error budgets well.

Quantization assigns each level its own step (optionally weighted by a
smoothness parameter ``s``, mirroring MGARD's s-norm control), and a
verify-tighten loop makes the user tolerance unconditional: the codec
measures the actual reconstruction error before emitting the stream and
tightens steps until the contract holds.  Both pointwise and L2
tolerances are supported, as in real MGARD.
"""

from __future__ import annotations

import struct

import numpy as np

from ..exceptions import CompressionError
from .base import (
    CompressedBlob,
    Compressor,
    ErrorBoundMode,
    absolute_tolerance,
    guarded_pointwise_bound,
)
from .huffman import huffman_decode, huffman_encode
from .metrics import achieved_error

__all__ = ["MGARDCompressor"]


def _axslice(ndim: int, axis: int, sl: slice) -> tuple[slice, ...]:
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


def _plan(shape: tuple[int, ...], n_levels: int) -> list[tuple[int, int, int]]:
    """Forward traversal: list of ``(level, axis, stride)`` lifting steps."""
    strides = [1] * len(shape)
    steps: list[tuple[int, int, int]] = []
    for level in range(n_levels):
        for axis, size in enumerate(shape):
            count = len(range(0, size, strides[axis]))
            if count >= 2:
                steps.append((level, axis, strides[axis]))
                strides[axis] *= 2
    return steps


def _final_strides(shape: tuple[int, ...], n_levels: int) -> list[int]:
    strides = [1] * len(shape)
    for __, axis, __stride in _plan(shape, n_levels):
        strides[axis] *= 2
    return strides


def _views(work: np.ndarray, shape: tuple[int, ...], strides_now: list[int], axis: int):
    """Even/odd views of the active grid for one lifting step."""
    sel = [slice(0, size, strides_now[d]) for d, size in enumerate(shape)]
    sub = work[tuple(sel)]
    even = sub[_axslice(sub.ndim, axis, slice(0, None, 2))]
    odd = sub[_axslice(sub.ndim, axis, slice(1, None, 2))]
    return even, odd


def _lift_forward(even: np.ndarray, odd: np.ndarray, axis: int) -> None:
    """CDF(2,2)-style predict + update, in place; details land in ``odd``."""
    ne = even.shape[axis]
    no = odd.shape[axis]
    interior = min(no, ne - 1)
    sl = lambda a, b: _axslice(even.ndim, axis, slice(a, b))  # noqa: E731
    # predict: detail = odd - interpolation(evens)
    odd[sl(0, interior)] -= 0.5 * (even[sl(0, interior)] + even[sl(1, interior + 1)])
    if interior < no:  # trailing odd has no right even neighbour
        odd[sl(interior, no)] -= even[sl(interior, no)]
    # update: evens absorb a quarter of each adjacent detail
    even[sl(0, no)] += 0.25 * odd[sl(0, no)]
    even[sl(1, interior + 1)] += 0.25 * odd[sl(0, interior)]


def _lift_inverse(even: np.ndarray, odd: np.ndarray, axis: int) -> None:
    """Exact mirror of :func:`_lift_forward`."""
    ne = even.shape[axis]
    no = odd.shape[axis]
    interior = min(no, ne - 1)
    sl = lambda a, b: _axslice(even.ndim, axis, slice(a, b))  # noqa: E731
    even[sl(1, interior + 1)] -= 0.25 * odd[sl(0, interior)]
    even[sl(0, no)] -= 0.25 * odd[sl(0, no)]
    odd[sl(0, interior)] += 0.5 * (even[sl(0, interior)] + even[sl(1, interior + 1)])
    if interior < no:
        odd[sl(interior, no)] += even[sl(interior, no)]


class MGARDCompressor(Compressor):
    """Multilevel codec with level-weighted, verified error control.

    Parameters
    ----------
    n_levels:
        Depth of the multilevel hierarchy (axes stop refining once they
        run out of points).
    s_weight:
        Level weighting exponent: the quantization step of level ``l`` is
        ``base * 2**(s_weight * l)``.  ``s_weight > 0`` spends more budget
        on fine levels (smoother reconstructions), 0 is uniform.
    """

    name = "mgard"
    supported_modes = frozenset(
        {ErrorBoundMode.ABS, ErrorBoundMode.REL, ErrorBoundMode.L2_ABS, ErrorBoundMode.L2_REL}
    )

    def __init__(self, n_levels: int = 6, s_weight: float = 0.5, max_alphabet: int = 4096) -> None:
        if n_levels < 1:
            raise CompressionError("n_levels must be >= 1")
        self.n_levels = int(n_levels)
        self.s_weight = float(s_weight)
        self.max_alphabet = int(max_alphabet)

    # -- transform ---------------------------------------------------------
    def _forward(self, data: np.ndarray) -> tuple[np.ndarray, list[tuple[int, int, int]]]:
        work = data.astype(np.float64).copy()
        steps = _plan(data.shape, self.n_levels)
        strides = [1] * data.ndim
        for level, axis, stride in steps:
            even, odd = _views(work, data.shape, strides, axis)
            _lift_forward(even, odd, axis)
            strides[axis] *= 2
        return work, steps

    def _level_step(self, base: float, level: int, s_weight: float | None = None) -> float:
        if s_weight is None:
            s_weight = self.s_weight
        return base * 2.0 ** (s_weight * level)

    def _quantize_details(
        self, work: np.ndarray, shape: tuple[int, ...], steps, base: float
    ) -> np.ndarray:
        """Round detail coefficients in place; return concatenated codes."""
        strides = [1] * len(shape)
        codes: list[np.ndarray] = []
        for level, axis, stride in steps:
            even, odd = _views(work, shape, strides, axis)
            pitch = self._level_step(base, level)
            step_codes = np.round(odd / pitch)
            odd[...] = step_codes * pitch
            codes.append(step_codes.astype(np.int64).ravel())
            strides[axis] *= 2
        return np.concatenate(codes) if codes else np.empty(0, dtype=np.int64)

    def _inverse(
        self, work: np.ndarray, shape: tuple[int, ...], steps, n_levels: int | None = None
    ) -> np.ndarray:
        strides = _final_strides(shape, self.n_levels if n_levels is None else n_levels)
        for level, axis, stride in reversed(steps):
            strides[axis] //= 2
            even, odd = _views(work, shape, strides, axis)
            _lift_inverse(even, odd, axis)
        return work

    # -- public API ----------------------------------------------------------
    def _compress(
        self,
        data: np.ndarray,
        tolerance: float,
        mode: ErrorBoundMode = ErrorBoundMode.ABS,
    ) -> CompressedBlob:
        self._check_mode(mode)
        data = np.asarray(data)
        eb = guarded_pointwise_bound(
            data, absolute_tolerance(data.astype(np.float64), tolerance, mode)
        )
        if eb <= 0.0:
            return self._lossless_blob(data, tolerance, mode)
        work0, steps = self._forward(data)
        if mode.is_l2:
            # Start from the L2 budget spread across coefficients and
            # tighten until the measured error honours the contract.
            base = eb * np.sqrt(max(data.size, 1)) / max(len(steps), 1)
            base *= 8.0
        else:
            base = 2.0 * eb / max(len(steps), 1)
            base *= 4.0
        codes: np.ndarray | None = None
        for __ in range(20):
            trial = work0.copy()
            codes = self._quantize_details(trial, data.shape, steps, base)
            recon = self._inverse(trial, data.shape, steps).astype(data.dtype)
            if achieved_error(data, recon, mode) <= tolerance:
                break
            base *= 0.5
        else:
            raise CompressionError("could not satisfy tolerance after tightening")

        entropy = huffman_encode(codes, max_alphabet=self.max_alphabet)
        coarse_sel = tuple(
            slice(0, size, stride)
            for size, stride in zip(data.shape, _final_strides(data.shape, self.n_levels))
        )
        coarse = work0[coarse_sel].astype(np.float64)
        header = struct.pack("<dBI", base, self.n_levels, coarse.size)
        payload = header + coarse.tobytes() + entropy
        return CompressedBlob(
            codec=self.name,
            payload=payload,
            shape=data.shape,
            dtype=str(data.dtype),
            mode=mode,
            tolerance=float(tolerance),
            metadata={"base_step": base, "s_weight": self.s_weight},
        )

    def _decompress(self, blob: CompressedBlob) -> np.ndarray:
        self._check_blob(blob)
        if blob.metadata.get("lossless"):
            return self._decompress_lossless(blob)
        base, n_levels, n_coarse = struct.unpack_from("<dBI", blob.payload, 0)
        offset = struct.calcsize("<dBI")
        coarse = np.frombuffer(blob.payload, dtype=np.float64, count=n_coarse, offset=offset)
        offset += n_coarse * 8
        codes = huffman_decode(blob.payload[offset:])

        shape = blob.shape
        # Blobs are self-describing: the hierarchy depth comes from the
        # payload and the level weighting from the blob metadata, so any
        # MGARDCompressor instance can decode any MGARD blob.
        s_weight = float(blob.metadata.get("s_weight", self.s_weight))
        steps = _plan(shape, n_levels)
        work = np.zeros(shape, dtype=np.float64)
        final = _final_strides(shape, n_levels)
        coarse_sel = tuple(slice(0, size, stride) for size, stride in zip(shape, final))
        work[coarse_sel] = coarse.reshape(work[coarse_sel].shape)
        # scatter quantized details back to their positions
        strides = [1] * len(shape)
        cursor = 0
        for level, axis, stride in steps:
            even, odd = _views(work, shape, strides, axis)
            count = odd.size
            pitch = self._level_step(base, level, s_weight)
            odd[...] = codes[cursor : cursor + count].reshape(odd.shape) * pitch
            cursor += count
            strides[axis] *= 2
        if cursor != codes.size:
            raise CompressionError(
                f"mgard stream misaligned: used {cursor} of {codes.size} codes"
            )
        recon = self._inverse(work, shape, steps, n_levels=n_levels)
        return recon.astype(blob.dtype)
