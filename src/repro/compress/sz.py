"""SZ-like error-bounded compressor (interpolation + quantization + Huffman).

Mirrors the algorithmic skeleton of SZ3 (paper ref. [6], "dynamic spline
interpolation"): a dyadic hierarchy of grid levels where each finer level
is *predicted* by linear interpolation from the already-reconstructed
coarser level, residuals are quantized on a uniform grid of pitch
``2 * eb`` (guaranteeing a pointwise bound of ``eb``), and the quantization
codes are entropy coded with canonical Huffman.

Key property shared with real SZ: predictions are computed from
*reconstructed* values, so compressor and decompressor stay in lockstep
and the pointwise error bound is exact by construction, not statistical.
"""

from __future__ import annotations

import struct

import numpy as np

from ..exceptions import CompressionError
from .base import (
    CompressedBlob,
    Compressor,
    ErrorBoundMode,
    absolute_tolerance,
    guarded_pointwise_bound,
)
from .huffman import huffman_decode, huffman_encode

__all__ = ["SZCompressor"]

_OUTLIER_CODE = 2**30  # residual too large for a 32-bit quantization code


def _refinement_plan(shape: tuple[int, ...], anchor_stride: int):
    """Yield ``(axis, stride)`` steps from coarse to fine.

    After the step ``(axis=d, stride=s)``, all grid points whose indices
    are multiples of ``s`` along axes ``<= d`` and multiples of ``2*s``
    along axes ``> d`` have been reconstructed.
    """
    stride = anchor_stride
    while stride >= 2:
        half = stride // 2
        for axis in range(len(shape)):
            yield axis, half
        stride //= 2


def _target_slices(
    shape: tuple[int, ...], axis: int, stride: int
) -> tuple[tuple[slice, ...], tuple[slice, ...], tuple[slice, ...] | None]:
    """Slices selecting prediction targets and their +/- neighbours.

    Targets sit at odd multiples of ``stride`` along ``axis``; axes before
    ``axis`` are already refined to ``stride`` (select every multiple),
    axes after are still at ``2 * stride``.
    """
    target: list[slice] = []
    left: list[slice] = []
    right: list[slice] | None = []
    for d, size in enumerate(shape):
        if d < axis:
            step = stride
            target.append(slice(0, size, step))
            left.append(slice(0, size, step))
            if right is not None:
                right.append(slice(0, size, step))
        elif d == axis:
            target.append(slice(stride, size, 2 * stride))
            left.append(slice(0, size - stride, 2 * stride))
            n_targets = len(range(stride, size, 2 * stride))
            n_right = len(range(2 * stride, size, 2 * stride))
            if right is not None and n_right >= n_targets:
                right.append(slice(2 * stride, size, 2 * stride))
            else:
                right = None  # last target lacks a right neighbour
        else:
            step = 2 * stride
            target.append(slice(0, size, step))
            left.append(slice(0, size, step))
            if right is not None:
                right.append(slice(0, size, step))
    return tuple(target), tuple(left), tuple(right) if right is not None else None


def _gather_view(recon: np.ndarray, axis: int, stride: int) -> np.ndarray:
    """View with non-target axes strided to the step's grid, target axis full."""
    sel: list[slice] = []
    for d, size in enumerate(recon.shape):
        if d < axis:
            sel.append(slice(0, size, stride))
        elif d == axis:
            sel.append(slice(None))
        else:
            sel.append(slice(0, size, 2 * stride))
    return recon[tuple(sel)]


def _axis_shape(ndim: int, axis: int, n: int) -> tuple[int, ...]:
    shape = [1] * ndim
    shape[axis] = n
    return tuple(shape)


def _predict(
    recon: np.ndarray, axis: int, stride: int, cubic: bool = False
) -> tuple[tuple[slice, ...], np.ndarray]:
    """Spline prediction for one refinement step.

    Linear: midpoint average of the two reconstructed neighbours.
    Cubic (SZ3's dynamic-spline option, ref. [6]): the 4-point
    interpolating cubic ``(-f[-3s] + 9 f[-s] + 9 f[+s] - f[+3s]) / 16``,
    falling back to linear (then to the left value) near boundaries.
    """
    target, __, __ = _target_slices(recon.shape, axis, stride)
    size = recon.shape[axis]
    positions = np.arange(stride, size, 2 * stride)
    view = _gather_view(recon, axis, stride)

    left = np.take(view, positions - stride, axis=axis)
    has_right = positions + stride < size
    right_positions = np.minimum(positions + stride, size - 1)
    right = np.take(view, right_positions, axis=axis)
    mask_shape = _axis_shape(view.ndim, axis, positions.size)
    right_mask = has_right.reshape(mask_shape)
    prediction = np.where(right_mask, 0.5 * (left + right), left)

    if cubic:
        cubic_ok = (positions - 3 * stride >= 0) & (positions + 3 * stride < size)
        if np.any(cubic_ok):
            far_left = np.take(
                view, np.maximum(positions - 3 * stride, 0), axis=axis
            )
            far_right = np.take(
                view, np.minimum(positions + 3 * stride, size - 1), axis=axis
            )
            cubic_pred = (-far_left + 9.0 * left + 9.0 * right - far_right) / 16.0
            cubic_mask = cubic_ok.reshape(mask_shape)
            prediction = np.where(cubic_mask, cubic_pred, prediction)
    return target, prediction


class SZCompressor(Compressor):
    """Interpolation-based SZ-like codec.

    Parameters
    ----------
    anchor_stride:
        Dyadic stride of the raw-stored anchor grid (power of two).
        Larger strides mean fewer raw anchors and deeper hierarchies.
    max_alphabet:
        Alphabet cap handed to the Huffman stage.
    """

    name = "sz"
    supported_modes = frozenset(
        {ErrorBoundMode.ABS, ErrorBoundMode.REL, ErrorBoundMode.L2_ABS, ErrorBoundMode.L2_REL}
    )

    def __init__(
        self,
        anchor_stride: int = 64,
        max_alphabet: int = 4096,
        interpolation: str = "dynamic",
    ) -> None:
        if anchor_stride < 2 or anchor_stride & (anchor_stride - 1):
            raise CompressionError("anchor_stride must be a power of two >= 2")
        if interpolation not in ("linear", "cubic", "dynamic"):
            raise CompressionError(
                f"interpolation must be linear/cubic/dynamic, got {interpolation!r}"
            )
        self.anchor_stride = int(anchor_stride)
        self.max_alphabet = int(max_alphabet)
        self.interpolation = interpolation

    def _choose_prediction(
        self, recon: np.ndarray, data: np.ndarray, axis: int, stride: int
    ) -> tuple[tuple[slice, ...], np.ndarray, bool]:
        """Pick the spline per step (SZ3's dynamic selection)."""
        if self.interpolation == "linear":
            target, prediction = _predict(recon, axis, stride, cubic=False)
            return target, prediction, False
        if self.interpolation == "cubic":
            target, prediction = _predict(recon, axis, stride, cubic=True)
            return target, prediction, True
        target, linear_pred = _predict(recon, axis, stride, cubic=False)
        __, cubic_pred = _predict(recon, axis, stride, cubic=True)
        truth = data[target]
        linear_cost = float(np.abs(truth - linear_pred).sum())
        cubic_cost = float(np.abs(truth - cubic_pred).sum())
        if cubic_cost < linear_cost:
            return target, cubic_pred, True
        return target, linear_pred, False

    # -- core quantization pass -------------------------------------------
    def _encode_pass(
        self, data: np.ndarray, eb: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[bool]]:
        """One full hierarchy encode.

        Returns ``(recon, codes, outliers, anchors, spline_choices)``.
        """
        shape = data.shape
        recon = np.zeros(shape, dtype=np.float64)
        anchor_sel = tuple(slice(0, size, self.anchor_stride) for size in shape)
        anchors = data[anchor_sel].astype(np.float64)
        recon[anchor_sel] = anchors
        pitch = 2.0 * eb
        codes_parts: list[np.ndarray] = []
        outliers: list[np.ndarray] = []
        choices: list[bool] = []
        for axis, stride in _refinement_plan(shape, self.anchor_stride):
            target, prediction, used_cubic = self._choose_prediction(
                recon, data, axis, stride
            )
            choices.append(used_cubic)
            truth = data[target]
            residual = truth - prediction
            codes = np.round(residual / pitch)
            overflow = np.abs(codes) >= _OUTLIER_CODE
            if np.any(overflow):
                outliers.append(truth[overflow].ravel())
                codes = np.where(overflow, float(_OUTLIER_CODE), codes)
            reconstructed = prediction + codes * pitch
            if np.any(overflow):
                reconstructed = np.where(overflow, truth, reconstructed)
            recon[target] = reconstructed
            codes_parts.append(codes.astype(np.int64).ravel())
        all_codes = (
            np.concatenate(codes_parts) if codes_parts else np.empty(0, dtype=np.int64)
        )
        all_outliers = (
            np.concatenate(outliers) if outliers else np.empty(0, dtype=np.float64)
        )
        return recon, all_codes, all_outliers, anchors, choices

    def _compress(
        self,
        data: np.ndarray,
        tolerance: float,
        mode: ErrorBoundMode = ErrorBoundMode.ABS,
    ) -> CompressedBlob:
        self._check_mode(mode)
        data = np.asarray(data)
        dtype = str(data.dtype)
        work = data.astype(np.float64)
        eb = guarded_pointwise_bound(data, absolute_tolerance(work, tolerance, mode))
        if eb <= 0.0:
            return self._lossless_blob(data, tolerance, mode)
        if mode.is_l2:
            # The sqrt(N) conversion is worst-case; most reconstructions
            # use far less of the L2 budget.  Start loose and tighten until
            # the measured L2 error honours the budget.
            l2_budget = (
                tolerance
                if mode is ErrorBoundMode.L2_ABS
                else tolerance * float(np.linalg.norm(work))
            )
            eb *= 16.0
            for __ in range(16):
                recon, codes, outliers, anchors, choices = self._encode_pass(work, eb)
                cast_error = recon.astype(data.dtype).astype(np.float64) - work
                if float(np.linalg.norm(cast_error)) <= l2_budget:
                    break
                eb *= 0.5
            else:
                raise CompressionError("could not satisfy L2 tolerance")
        else:
            recon, codes, outliers, anchors, choices = self._encode_pass(work, eb)

        entropy = huffman_encode(codes, max_alphabet=self.max_alphabet)
        choice_bits = np.packbits(np.asarray(choices, dtype=np.uint8)) if choices else (
            np.empty(0, dtype=np.uint8)
        )
        header = struct.pack(
            "<dIIH", eb, anchors.size, outliers.size, len(choices)
        )
        # Anchors are stored losslessly at full precision: a lossy anchor
        # would violate the pointwise contract at the anchor grid points.
        payload = (
            header
            + choice_bits.tobytes()
            + anchors.astype(np.float64).tobytes()
            + outliers.astype(np.float64).tobytes()
            + entropy
        )
        return CompressedBlob(
            codec=self.name,
            payload=payload,
            shape=data.shape,
            dtype=dtype,
            mode=mode,
            tolerance=float(tolerance),
            metadata={
                "anchor_stride": self.anchor_stride,
                "eb": eb,
                "interpolation": self.interpolation,
            },
        )

    def _decompress(self, blob: CompressedBlob) -> np.ndarray:
        self._check_blob(blob)
        if blob.metadata.get("lossless"):
            return self._decompress_lossless(blob)
        eb, n_anchors, n_outliers, n_choices = struct.unpack_from("<dIIH", blob.payload, 0)
        offset = struct.calcsize("<dIIH")
        n_choice_bytes = (n_choices + 7) // 8
        choice_bits = np.frombuffer(
            blob.payload, dtype=np.uint8, count=n_choice_bytes, offset=offset
        )
        choices = np.unpackbits(choice_bits)[:n_choices].astype(bool)
        offset += n_choice_bytes
        anchors = np.frombuffer(
            blob.payload, dtype=np.float64, count=n_anchors, offset=offset
        )
        offset += n_anchors * 8
        outliers = np.frombuffer(
            blob.payload, dtype=np.float64, count=n_outliers, offset=offset
        )
        offset += n_outliers * 8
        codes = huffman_decode(blob.payload[offset:])

        shape = blob.shape
        stride = blob.metadata.get("anchor_stride", self.anchor_stride)
        recon = np.zeros(shape, dtype=np.float64)
        anchor_sel = tuple(slice(0, size, stride) for size in shape)
        recon[anchor_sel] = anchors.reshape(recon[anchor_sel].shape)
        pitch = 2.0 * eb
        code_cursor = 0
        outlier_cursor = 0
        for step_index, (axis, step_stride) in enumerate(
            _refinement_plan(shape, stride)
        ):
            cubic = bool(choices[step_index]) if step_index < len(choices) else False
            target, prediction = _predict(recon, axis, step_stride, cubic=cubic)
            count = prediction.size
            step_codes = codes[code_cursor : code_cursor + count].reshape(prediction.shape)
            code_cursor += count
            values = prediction + step_codes * pitch
            overflow = step_codes == _OUTLIER_CODE
            n_over = int(overflow.sum())
            if n_over:
                values[overflow] = outliers[outlier_cursor : outlier_cursor + n_over]
                outlier_cursor += n_over
            recon[target] = values
        if code_cursor != codes.size:
            raise CompressionError(
                f"sz stream misaligned: used {code_cursor} of {codes.size} codes"
            )
        return recon.astype(blob.dtype)
