"""Codec framework: error-bound modes, compressed blobs, compressor ABC.

The paper uses three error-bounded lossy compressors (SZ, ZFP, MGARD) and
exercises them under both pointwise (L-infinity) and L2 tolerances; ZFP
supports only the pointwise mode (Fig. 8 note).  The framework captures
that as a per-codec ``supported_modes`` set.
"""

from __future__ import annotations

import struct
import time
import zlib
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..exceptions import CompressionError, IntegrityError, ToleranceError
from ..obs import get_metrics, get_tracer

__all__ = [
    "ErrorBoundMode",
    "CompressedBlob",
    "Compressor",
    "absolute_tolerance",
    "guarded_pointwise_bound",
]


class ErrorBoundMode(Enum):
    """How the user tolerance constrains the reconstruction error."""

    ABS = "abs"  # max |x - x~| <= tol
    REL = "rel"  # max |x - x~| <= tol * (max x - min x)
    L2_ABS = "l2_abs"  # ||x - x~||_2 <= tol
    L2_REL = "l2_rel"  # ||x - x~||_2 <= tol * ||x||_2

    @property
    def is_pointwise(self) -> bool:
        return self in (ErrorBoundMode.ABS, ErrorBoundMode.REL)

    @property
    def is_l2(self) -> bool:
        return not self.is_pointwise


def absolute_tolerance(
    data: np.ndarray, tolerance: float, mode: ErrorBoundMode
) -> float:
    """Convert a tolerance in any mode into a *pointwise absolute* bound.

    For L2 modes the returned pointwise bound guarantees the L2 target via
    ``||e||_2 <= sqrt(N) * max|e|``; codecs may instead honour the L2
    budget directly and use this only as a starting point.
    """
    if tolerance <= 0:
        raise ToleranceError(f"tolerance must be positive, got {tolerance}")
    data = np.asarray(data)
    if mode is ErrorBoundMode.ABS:
        return float(tolerance)
    if mode is ErrorBoundMode.REL:
        value_range = float(data.max() - data.min()) if data.size else 0.0
        return float(tolerance) * (value_range if value_range > 0 else 1.0)
    if mode is ErrorBoundMode.L2_ABS:
        return float(tolerance) / np.sqrt(max(data.size, 1))
    if mode is ErrorBoundMode.L2_REL:
        norm = float(np.linalg.norm(data.astype(np.float64)))
        return float(tolerance) * (norm if norm > 0 else 1.0) / np.sqrt(max(data.size, 1))
    raise ToleranceError(f"unknown mode {mode!r}")


def guarded_pointwise_bound(data: np.ndarray, eb: float) -> float:
    """Shrink a pointwise bound so storage-dtype rounding cannot break it.

    Reconstructions are returned in the input's dtype; the final cast can
    add up to half an ulp at the data's magnitude.  Returns a bound that
    leaves room for that, or a non-positive value when the tolerance is
    below the dtype's own precision (callers then fall back to lossless).
    """
    data = np.asarray(data)
    if data.size == 0:
        return eb
    if np.issubdtype(data.dtype, np.floating):
        eps = float(np.finfo(data.dtype).eps)
    else:
        eps = 0.0
    cast_slack = 0.5 * eps * float(np.max(np.abs(data.astype(np.float64))))
    return eb * (1.0 - 1e-9) - cast_slack


@dataclass
class CompressedBlob:
    """A self-describing compressed payload.

    Attributes
    ----------
    codec:
        Name of the producing codec (``sz``/``zfp``/``mgard``).
    payload:
        The compressed bytes.
    shape, dtype:
        Array geometry for reconstruction.
    mode, tolerance:
        The error-bound contract the payload honours.
    metadata:
        Codec-specific reconstruction parameters.
    """

    codec: str
    payload: bytes
    shape: tuple[int, ...]
    dtype: str
    mode: ErrorBoundMode
    tolerance: float
    metadata: dict = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize

    @property
    def compression_ratio(self) -> float:
        if self.nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.nbytes

    @property
    def payload_crc32(self) -> int:
        """CRC32 of the payload bytes (used by the v2 wire format)."""
        return zlib.crc32(self.payload)

    def validate(self) -> "CompressedBlob":
        """Cheap structural sanity checks; raises a typed error on failure.

        Verifies the dtype parses, the shape is non-negative, and — for
        lossless payloads — that the payload length matches the geometry
        exactly.  Returns the blob so it can be used inline.
        """
        try:
            itemsize = np.dtype(self.dtype).itemsize
        except TypeError as exc:
            raise CompressionError(f"blob has invalid dtype {self.dtype!r}") from exc
        if any((not isinstance(v, (int, np.integer))) or v < 0 for v in self.shape):
            raise CompressionError(f"blob has invalid shape {self.shape!r}")
        if self.metadata.get("lossless"):
            expected = int(np.prod(self.shape)) * itemsize
            if len(self.payload) != expected:
                raise IntegrityError(
                    f"lossless payload is {len(self.payload)} bytes but shape "
                    f"{self.shape} × dtype {self.dtype} requires {expected}"
                )
        return self


class Compressor:
    """Abstract error-bounded lossy compressor.

    Subclasses implement :meth:`_compress` / :meth:`_decompress`; the
    public :meth:`compress` / :meth:`decompress` are template methods
    that add observability (a ``codec.compress``/``codec.decompress``
    span plus per-codec timing histograms) around the implementation.
    With observability disabled the wrappers delegate immediately.
    """

    #: codec registry name
    name: str = "abstract"
    #: error-bound modes this codec honours
    supported_modes: frozenset[ErrorBoundMode] = frozenset()

    def _compress(
        self,
        data: np.ndarray,
        tolerance: float,
        mode: ErrorBoundMode,
    ) -> CompressedBlob:
        """Codec-specific compression; see :meth:`compress`."""
        raise NotImplementedError

    def _decompress(self, blob: CompressedBlob) -> np.ndarray:
        """Codec-specific reconstruction; see :meth:`decompress`."""
        raise NotImplementedError

    def compress(
        self,
        data: np.ndarray,
        tolerance: float,
        mode: ErrorBoundMode = ErrorBoundMode.ABS,
    ) -> CompressedBlob:
        """Compress ``data`` so the reconstruction honours the tolerance."""
        tracer = get_tracer()
        metrics = get_metrics()
        if not (tracer.enabled or metrics.enabled):
            return self._compress(data, tolerance, mode)
        start = time.perf_counter()
        with tracer.span(
            "codec.compress",
            codec=self.name,
            mode=mode.value,
            tolerance=float(tolerance),
        ) as span:
            blob = self._compress(data, tolerance, mode)
            span.set(
                ratio=blob.compression_ratio,
                payload_bytes=blob.nbytes,
                lossless=bool(blob.metadata.get("lossless", False)),
            )
        elapsed = time.perf_counter() - start
        metrics.histogram("codec_compress_seconds", codec=self.name).observe(elapsed)
        metrics.counter("codec_compress_total", codec=self.name).inc()
        metrics.gauge("codec_compression_ratio", codec=self.name).set(blob.compression_ratio)
        return blob

    def decompress(self, blob: CompressedBlob) -> np.ndarray:
        """Reconstruct the array from a blob produced by this codec."""
        tracer = get_tracer()
        metrics = get_metrics()
        if not (tracer.enabled or metrics.enabled):
            return self._decompress(blob)
        start = time.perf_counter()
        with tracer.span(
            "codec.decompress",
            codec=self.name,
            payload_bytes=blob.nbytes,
            lossless=bool(blob.metadata.get("lossless", False)),
        ):
            data = self._decompress(blob)
        elapsed = time.perf_counter() - start
        metrics.histogram("codec_decompress_seconds", codec=self.name).observe(elapsed)
        metrics.counter("codec_decompress_total", codec=self.name).inc()
        return data

    # -- shared helpers --------------------------------------------------
    def _check_mode(self, mode: ErrorBoundMode) -> None:
        if mode not in self.supported_modes:
            supported = ", ".join(sorted(m.value for m in self.supported_modes))
            raise ToleranceError(
                f"codec {self.name!r} does not support mode {mode.value!r} "
                f"(supported: {supported})"
            )

    def _check_blob(self, blob: CompressedBlob) -> None:
        if blob.codec != self.name:
            raise CompressionError(
                f"blob was produced by codec {blob.codec!r}, not {self.name!r}"
            )

    def _lossless_blob(
        self, data: np.ndarray, tolerance: float, mode: ErrorBoundMode
    ) -> CompressedBlob:
        """Raw storage fallback for tolerances below dtype precision."""
        return CompressedBlob(
            codec=self.name,
            payload=np.ascontiguousarray(data).tobytes(),
            shape=data.shape,
            dtype=str(data.dtype),
            mode=mode,
            tolerance=float(tolerance),
            metadata={"lossless": True},
        )

    @staticmethod
    def _decompress_lossless(blob: CompressedBlob) -> np.ndarray:
        blob.validate()
        return np.frombuffer(blob.payload, dtype=blob.dtype).reshape(blob.shape).copy()

    def safe_decompress(self, blob: CompressedBlob, screen: bool = True) -> np.ndarray:
        """Decompress with integrity protection around the raw codec.

        Structural blob validation runs first, codec-internal failures
        (truncated payloads surfacing as ``struct``/``ValueError``/
        ``IndexError``) are converted to :class:`CompressionError`, and
        the reconstruction is optionally screened for NaN/Inf.  This is
        the entry point :class:`~repro.io.store.DatasetStore` and the
        pipeline use on every read.
        """
        from ..resilience.guards import screen_finite

        self._check_blob(blob)
        blob.validate()
        try:
            data = self.decompress(blob)
        except CompressionError:
            raise
        except (ValueError, KeyError, IndexError, TypeError, EOFError, struct.error) as exc:
            raise CompressionError(
                f"codec {self.name!r} failed to decode blob "
                f"(shape {blob.shape}, {blob.nbytes} payload bytes): {exc}"
            ) from exc
        if data.shape != tuple(blob.shape):
            raise IntegrityError(
                f"codec {self.name!r} reconstructed shape {data.shape}, "
                f"blob header promised {tuple(blob.shape)}"
            )
        if screen:
            screen_finite(data, stage="decompress")
        return data

    def roundtrip(
        self,
        data: np.ndarray,
        tolerance: float,
        mode: ErrorBoundMode = ErrorBoundMode.ABS,
    ) -> tuple[np.ndarray, CompressedBlob]:
        """Compress then decompress; returns ``(reconstruction, blob)``."""
        blob = self.compress(data, tolerance, mode)
        return self.decompress(blob), blob
