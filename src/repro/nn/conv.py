"""2-D convolution layers (plain and spectrally normalized).

Convolutions run as a single matmul over im2col patch columns.  For the
error-flow analysis, the layer exposes its matricized kernel
``(out_channels, in_channels * kh * kw)`` — the spectral norm of that
matrix is the standard spectral-normalization surrogate for the conv
operator norm (Miyato et al., paper ref. [19]) and is what the quantizer
rounds.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .functional import col2im, im2col
from .init import kaiming_uniform
from .module import Module, Parameter
from .spectral import PowerIterationState, spectral_norm

__all__ = ["Conv2d", "SpectralConv2d"]


class Conv2d(Module):
    """Standard 2-D convolution with symmetric zero padding.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel edge length.
    stride, padding:
        Convolution geometry.
    bias:
        Whether to learn a per-output-channel bias.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ShapeError("conv dimensions must be positive (padding non-negative)")
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(kaiming_uniform(shape, rng))
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def matricized_weight(self) -> np.ndarray:
        """Kernel reshaped to ``(out_channels, in_channels * kh * kw)``."""
        return self.weight.data.reshape(self.out_channels, -1)

    def effective_weight(self) -> np.ndarray:
        return self.matricized_weight()

    def effective_bias(self) -> np.ndarray | None:
        return None if self.bias is None else self.bias.data

    def set_matricized_weight(self, matrix: np.ndarray) -> None:
        """Write back a (possibly quantized) matricized kernel."""
        if matrix.shape != (self.out_channels, self.in_channels * self.kernel_size**2):
            raise ShapeError(f"matricized kernel has wrong shape {matrix.shape}")
        self.weight.data = matrix.reshape(self.weight.data.shape).astype(
            self.weight.data.dtype
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expects (N, {self.in_channels}, H, W); got {x.shape}"
            )
        kernel = (self.kernel_size, self.kernel_size)
        cols, (out_h, out_w) = im2col(x, kernel, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        out = cols @ self.matricized_weight().T
        if self.bias is not None:
            out = out + self.bias.data
        n = x.shape[0]
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, __, out_h, out_w = grad_output.shape
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        grad_kernel = grad_flat.T @ self._cols
        self.weight.grad += grad_kernel.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ self.matricized_weight()
        kernel = (self.kernel_size, self.kernel_size)
        return col2im(grad_cols, self._x_shape, kernel, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class SpectralConv2d(Conv2d):
    """Conv2d whose matricized kernel carries parameterized spectral norm.

    Effective kernel: ``alpha * K / sigma(mat(K))`` so that the spectral
    norm of the matricized kernel equals ``|alpha|`` exactly, mirroring
    :class:`~repro.nn.linear.SpectralLinear`.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        alpha_init: float | None = None,
    ) -> None:
        super().__init__(
            in_channels, out_channels, kernel_size, stride, padding, bias, rng
        )
        if rng is None:
            rng = np.random.default_rng(0)
        if alpha_init is None:
            alpha_init = spectral_norm(self.matricized_weight())
        self.alpha = Parameter(np.asarray([alpha_init], dtype=np.float32))
        self._power = PowerIterationState.for_matrix(self.matricized_weight(), rng)
        self._cached: tuple[np.ndarray, float] | None = None
        self._eval_key: tuple | None = None
        self._eval_cache: tuple[np.ndarray, float] | None = None

    @property
    def spectral_alpha(self) -> float:
        """Spectral norm of the effective matricized kernel (= |alpha|)."""
        return abs(float(self.alpha.data[0]))

    def effective_weight(self) -> np.ndarray:
        sigma = max(spectral_norm(self.matricized_weight()), 1e-12)
        return (self.matricized_weight() / sigma) * self.alpha.data[0]

    def _sigma_and_normalized(self) -> tuple[np.ndarray, float]:
        """Training: one power-iteration step; eval: converged sigma.

        The error bound assumes the deployed kernel's matricized spectral
        norm is exactly ``|alpha|``, so evaluation normalizes by the fully
        converged estimate (cached until the weights change).
        """
        raw = self.matricized_weight()
        if self.training:
            sigma = max(self._power.step(raw, n_steps=1), 1e-12)
            return raw / sigma, sigma
        key = (id(self.weight.data), self.weight.data.shape)
        if self._eval_key != key:
            sigma = max(spectral_norm(raw), 1e-12)
            self._eval_cache = (raw / sigma, sigma)
            self._eval_key = key
        return self._eval_cache

    def forward(self, x: np.ndarray) -> np.ndarray:
        normalized, sigma = self._sigma_and_normalized()
        self._cached = (normalized, sigma)
        kernel = (self.kernel_size, self.kernel_size)
        cols, (out_h, out_w) = im2col(x, kernel, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        out = cols @ (normalized.T * self.alpha.data[0])
        if self.bias is not None:
            out = out + self.bias.data
        n = x.shape[0]
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        normalized, sigma = self._cached
        alpha = float(self.alpha.data[0])
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        grad_w_eff = grad_flat.T @ self._cols  # wrt alpha * normalized
        self.alpha.grad[0] += float(np.sum(grad_w_eff * normalized))
        grad_w_bar = alpha * grad_w_eff
        coupling = float(np.sum(grad_w_bar * normalized))
        grad_raw = (grad_w_bar - coupling * np.outer(self._power.u, self._power.v)) / sigma
        self.weight.grad += grad_raw.reshape(self.weight.data.shape).astype(
            self.weight.grad.dtype
        )
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ (normalized * alpha)
        kernel = (self.kernel_size, self.kernel_size)
        return col2im(grad_cols, self._x_shape, kernel, self.stride, self.padding)
