"""Numpy neural-network substrate.

Layers, losses, optimizers and a trainer sufficient to build and train the
scientific surrogate models evaluated in the paper (MLPs and ResNets),
including the parameterized spectral normalization of Section III-C.
"""

from .attention import LayerNorm, MultiHeadSelfAttention, TransformerBlock
from .activations import (
    ACTIVATIONS,
    GELU,
    Activation,
    Identity,
    LeakyReLU,
    PReLU,
    ReLU,
    Sigmoid,
    Tanh,
    make_activation,
)
from .conv import Conv2d, SpectralConv2d
from .linear import Linear, SpectralLinear
from .losses import CrossEntropyLoss, MSELoss, spectral_penalty, spectral_penalty_backward
from .module import HookHandle, Module, Parameter
from .normalization import BatchNorm1d, BatchNorm2d, fold_batchnorm_scale
from .optim import SGD, Adam, Optimizer
from .pooling import AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d
from .residual import BasicBlock, ResidualBlock
from .schedulers import CosineAnnealingLR, Scheduler, StepLR
from .sequential import Sequential
from .spectral import PowerIterationState, spectral_norm, spectral_norm_exact
from .trainer import Trainer, TrainingHistory
from .upsample import ConcatChannels, Upsample2d

__all__ = [
    "CosineAnnealingLR",
    "Scheduler",
    "StepLR",
    "Upsample2d",
    "ConcatChannels",
    "TransformerBlock",
    "MultiHeadSelfAttention",
    "LayerNorm",
    "ACTIVATIONS",
    "Activation",
    "Adam",
    "AvgPool2d",
    "BasicBlock",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "CrossEntropyLoss",
    "Flatten",
    "GELU",
    "GlobalAvgPool2d",
    "Identity",
    "LeakyReLU",
    "Linear",
    "MSELoss",
    "MaxPool2d",
    "HookHandle",
    "Module",
    "Optimizer",
    "PReLU",
    "Parameter",
    "PowerIterationState",
    "ReLU",
    "ResidualBlock",
    "SGD",
    "Sequential",
    "Sigmoid",
    "SpectralConv2d",
    "SpectralLinear",
    "Tanh",
    "Trainer",
    "TrainingHistory",
    "fold_batchnorm_scale",
    "make_activation",
    "spectral_norm",
    "spectral_norm_exact",
    "spectral_penalty",
    "spectral_penalty_backward",
]
