"""Transformer components — the paper's Section VI extension target.

"Scientific community is increasingly deploying more complex surrogate
models, such as U-Nets and transformers ... We intend to deepen our
theoretical foundations in subsequent research, with a special focus on
applying these methods to transformer-based weather prediction tasks."

This module provides the substrate that future error-flow derivation
needs: :class:`LayerNorm`, :class:`MultiHeadSelfAttention` and
:class:`TransformerBlock`, all with exact numpy backward passes so the
blocks are trainable.  Closed-form Eq. (3)-style bounds for attention are
open research (softmax attention is not globally Lipschitz); the library
pairs these modules with the *empirical* local-Lipschitz estimator in
:func:`repro.core.sensitivity.empirical_lipschitz`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .functional import softmax
from .linear import Linear
from .module import Module, Parameter

__all__ = ["LayerNorm", "MultiHeadSelfAttention", "TransformerBlock"]


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = int(dim)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(dim, dtype=np.float32))
        self.beta = Parameter(np.zeros(dim, dtype=np.float32))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.dim:
            raise ShapeError(f"LayerNorm({self.dim}) got trailing dim {x.shape[-1]}")
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._cache
        axes = tuple(range(grad_output.ndim - 1))
        self.gamma.grad += (grad_output * x_hat).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)
        grad_x_hat = grad_output * self.gamma.data
        mean_g = grad_x_hat.mean(axis=-1, keepdims=True)
        mean_gx = (grad_x_hat * x_hat).mean(axis=-1, keepdims=True)
        return (grad_x_hat - mean_g - x_hat * mean_gx) * inv_std


class MultiHeadSelfAttention(Module):
    """Standard scaled-dot-product multi-head self-attention.

    Input/output shape ``(N, T, D)``.  Projections are plain
    :class:`Linear` layers (their spectral norms remain inspectable for
    future bound derivations).
    """

    def __init__(
        self, d_model: int, n_heads: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        if d_model % n_heads != 0:
            raise ShapeError(f"d_model {d_model} not divisible by n_heads {n_heads}")
        if rng is None:
            rng = np.random.default_rng(0)
        self.d_model = int(d_model)
        self.n_heads = int(n_heads)
        self.d_head = d_model // n_heads
        self.query = Linear(d_model, d_model, rng=rng, weight_init="xavier_uniform")
        self.key = Linear(d_model, d_model, rng=rng, weight_init="xavier_uniform")
        self.value = Linear(d_model, d_model, rng=rng, weight_init="xavier_uniform")
        self.out = Linear(d_model, d_model, rng=rng, weight_init="xavier_uniform")
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        n, t, __ = x.shape
        return x.reshape(n, t, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        n, __, t, __ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(n, t, self.d_model)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[-1] != self.d_model:
            raise ShapeError(f"attention expects (N, T, {self.d_model}); got {x.shape}")
        q = self._split_heads(self.query(x))
        k = self._split_heads(self.key(x))
        v = self._split_heads(self.value(x))
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.d_head)
        attn = softmax(scores, axis=-1)
        context = attn @ v
        self._cache = (q, k, v, attn)
        return self.out(self._merge_heads(context))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        q, k, v, attn = self._cache
        grad_context = self._split_heads(self.out.backward(grad_output))
        grad_attn = grad_context @ v.transpose(0, 1, 3, 2)
        grad_v = attn.transpose(0, 1, 3, 2) @ grad_context
        # softmax backward: dL/ds = attn * (g - sum(g * attn))
        inner = (grad_attn * attn).sum(axis=-1, keepdims=True)
        grad_scores = attn * (grad_attn - inner) / np.sqrt(self.d_head)
        grad_q = grad_scores @ k
        grad_k = grad_scores.transpose(0, 1, 3, 2) @ q
        grad_x = self.query.backward(self._merge_heads(grad_q))
        grad_x = grad_x + self.key.backward(self._merge_heads(grad_k))
        grad_x = grad_x + self.value.backward(self._merge_heads(grad_v))
        return grad_x


class TransformerBlock(Module):
    """Pre-LN transformer block: attention + MLP, each with residual."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        mlp_ratio: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.norm1 = LayerNorm(d_model)
        self.attention = MultiHeadSelfAttention(d_model, n_heads, rng=rng)
        self.norm2 = LayerNorm(d_model)
        hidden = d_model * mlp_ratio
        self.mlp_in = Linear(d_model, hidden, rng=rng, weight_init="xavier_uniform")
        self.mlp_out = Linear(hidden, d_model, rng=rng, weight_init="xavier_uniform")
        from .activations import GELU

        self.mlp_act = GELU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attention(self.norm1(x))
        return x + self.mlp_out(self.mlp_act(self.mlp_in(self.norm2(x))))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_mlp = self.mlp_in.backward(
            self.mlp_act.backward(self.mlp_out.backward(grad_output))
        )
        grad = grad_output + self.norm2.backward(grad_mlp)
        grad_attention = self.attention.backward(grad)
        return grad + self.norm1.backward(grad_attention)
