"""Training loop utilities.

The paper's workflow (Fig. 1) starts from a *trained* network, so the
library ships a small trainer sufficient to produce the surrogate models
used in the experiments: mini-batch iteration, optional spectral penalty
(Section III-C), validation tracking and deterministic shuffling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import TrainingError
from ..obs import attach_layer_timing, enabled as obs_enabled, get_logger, get_metrics, get_tracer
from .losses import spectral_penalty, spectral_penalty_backward
from .module import Module
from .optim import Optimizer

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def best_val_loss(self) -> float:
        if not self.val_loss:
            raise TrainingError("no validation passes were run")
        return min(self.val_loss)


class Trainer:
    """Mini-batch trainer with optional spectral penalty.

    Parameters
    ----------
    model:
        Module to train.
    loss:
        Callable loss object with ``__call__(pred, target) -> float`` and
        ``backward() -> grad``.
    optimizer:
        Optimizer over ``model.parameters()``.
    spectral_weight:
        Coefficient of the PSN penalty ``sum alpha^2`` added to the loss
        (0 disables it; models without PSN layers are unaffected).
    metric:
        Optional callable ``(pred, target) -> float`` evaluated on the
        validation set (e.g. accuracy).
    """

    def __init__(
        self,
        model: Module,
        loss,
        optimizer: Optimizer,
        spectral_weight: float = 0.0,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        scheduler=None,
        grad_clip: float | None = None,
        patience: int | None = None,
    ) -> None:
        """See class docstring; additionally:

        scheduler:
            Optional :class:`~repro.nn.schedulers.Scheduler`, stepped once
            per epoch.
        grad_clip:
            Global L2 norm ceiling applied to the gradients each step.
        patience:
            Early stopping: abort when the validation loss has not
            improved for this many consecutive epochs.
        """
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.spectral_weight = float(spectral_weight)
        self.metric = metric
        self.scheduler = scheduler
        if grad_clip is not None and grad_clip <= 0:
            raise TrainingError("grad_clip must be positive")
        self.grad_clip = grad_clip
        if patience is not None and patience < 1:
            raise TrainingError("patience must be >= 1")
        self.patience = patience

    def _clip_gradients(self) -> None:
        total_sq = 0.0
        parameters = [p for p in self.model.parameters() if p.requires_grad]
        for param in parameters:
            total_sq += float(np.sum(param.grad.astype(np.float64) ** 2))
        total = np.sqrt(total_sq)
        if total > self.grad_clip:
            scale = self.grad_clip / total
            for param in parameters:
                param.grad *= scale

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One optimizer step on a single batch; returns the batch loss."""
        self.model.train()
        self.optimizer.zero_grad()
        predictions = self.model(inputs)
        value = self.loss(predictions, targets)
        get_metrics().counter("train_steps_total").inc()
        if not np.isfinite(value):
            get_metrics().counter("train_divergences_total").inc()
            raise TrainingError(f"loss diverged to {value!r}")
        grad = self.loss.backward()
        self.model.backward(grad)
        if self.spectral_weight:
            value += spectral_penalty(self.model, self.spectral_weight)
            spectral_penalty_backward(self.model, self.spectral_weight)
        if self.grad_clip is not None:
            self._clip_gradients()
        self.optimizer.step()
        return float(value)

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray) -> tuple[float, float | None]:
        """Loss (and metric, if configured) on held-out data."""
        self.model.eval()
        predictions = self.model(inputs)
        value = float(self.loss(predictions, targets))
        metric_value = None
        if self.metric is not None:
            metric_value = float(self.metric(predictions, targets))
        return value, metric_value

    def fit(
        self,
        train_inputs: np.ndarray,
        train_targets: np.ndarray,
        epochs: int,
        batch_size: int,
        val_inputs: np.ndarray | None = None,
        val_targets: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Full training loop with per-epoch shuffling.

        Returns a :class:`TrainingHistory` with train loss per epoch and,
        when validation data is given, validation loss/metric per epoch.
        """
        if len(train_inputs) != len(train_targets):
            raise TrainingError(
                f"inputs ({len(train_inputs)}) and targets ({len(train_targets)}) disagree"
            )
        if epochs <= 0 or batch_size <= 0:
            raise TrainingError("epochs and batch_size must be positive")
        if rng is None:
            rng = np.random.default_rng(0)
        history = TrainingHistory()
        n = len(train_inputs)
        best_val = np.inf
        stale_epochs = 0
        tracer = get_tracer()
        metrics = get_metrics()
        log = get_logger("trainer")
        # Per-layer forward/backward timing only while observability is
        # live — the hooks wrap instance methods, so disabled runs pay
        # nothing at all.
        timing = attach_layer_timing(self.model) if obs_enabled() else None
        try:
            with tracer.span(
                "trainer.fit", epochs=epochs, batch_size=batch_size, samples=n
            ) as fit_span:
                for epoch in range(epochs):
                    with tracer.span("trainer.epoch", epoch=epoch) as epoch_span:
                        order = rng.permutation(n)
                        epoch_loss = 0.0
                        batches = 0
                        for start in range(0, n, batch_size):
                            batch = order[start : start + batch_size]
                            epoch_loss += self.train_step(
                                train_inputs[batch], train_targets[batch]
                            )
                            batches += 1
                        history.train_loss.append(epoch_loss / max(batches, 1))
                        epoch_span.set(train_loss=history.train_loss[-1], batches=batches)
                        if val_inputs is not None and val_targets is not None:
                            val_loss, val_metric = self.evaluate(val_inputs, val_targets)
                            history.val_loss.append(val_loss)
                            epoch_span.set(val_loss=val_loss)
                            if val_metric is not None:
                                history.val_metric.append(val_metric)
                            if self.patience is not None:
                                if val_loss < best_val - 1e-12:
                                    best_val = val_loss
                                    stale_epochs = 0
                                else:
                                    stale_epochs += 1
                                    if stale_epochs >= self.patience:
                                        metrics.counter("early_stops_total").inc()
                                        break
                        if self.scheduler is not None:
                            self.scheduler.step()
                        if verbose:  # pragma: no cover - console output
                            parts = [
                                f"epoch {epoch + 1}/{epochs}",
                                f"train {history.train_loss[-1]:.3e}",
                            ]
                            if history.val_loss:
                                parts.append(f"val {history.val_loss[-1]:.3e}")
                            log.info("  ".join(parts))
                fit_span.set(epochs_run=history.epochs)
                if history.train_loss:
                    fit_span.set(final_train_loss=history.train_loss[-1])
        finally:
            if timing is not None:
                timing.detach()
        self.model.eval()
        return history
