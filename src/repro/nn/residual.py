"""Residual building blocks (paper Eq. 1).

A block computes ``y = F(x, {W^(l)}) + W_s x`` where the shortcut ``W_s``
is the identity when shapes match and a learned 1x1 projection otherwise.
The error-flow analyzer reads the block structure through
:meth:`ResidualBlock.shortcut_matrix`.
"""

from __future__ import annotations

import numpy as np

from .activations import ReLU
from .conv import Conv2d, SpectralConv2d
from .module import Module
from .normalization import BatchNorm2d
from .sequential import Sequential

__all__ = ["ResidualBlock", "BasicBlock"]


class ResidualBlock(Module):
    """Generic residual wrapper: ``y = body(x) + shortcut(x)``.

    Parameters
    ----------
    body:
        The residual mapping ``F``.
    shortcut:
        ``None`` for an identity skip; otherwise a module projecting ``x``
        to the body's output shape (e.g. a strided 1x1 conv).
    post_activation:
        Optional activation applied to the sum (ResNet applies ReLU).
    """

    def __init__(
        self,
        body: Module,
        shortcut: Module | None = None,
        post_activation: Module | None = None,
    ) -> None:
        super().__init__()
        self.body = body
        if shortcut is not None:
            self.shortcut = shortcut
        else:
            object.__setattr__(self, "shortcut", None)
        if post_activation is not None:
            self.post_activation = post_activation
        else:
            object.__setattr__(self, "post_activation", None)

    @property
    def has_projection(self) -> bool:
        return self.shortcut is not None

    def forward(self, x: np.ndarray) -> np.ndarray:
        branch = self.body(x)
        skip = x if self.shortcut is None else self.shortcut(x)
        out = branch + skip
        if self.post_activation is not None:
            out = self.post_activation(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.post_activation is not None:
            grad_output = self.post_activation.backward(grad_output)
        grad_branch = self.body.backward(grad_output)
        if self.shortcut is None:
            grad_skip = grad_output
        else:
            grad_skip = self.shortcut.backward(grad_output)
        return grad_branch + grad_skip


class BasicBlock(ResidualBlock):
    """The two-conv ResNet basic block (3x3 conv x2 + skip).

    When ``stride != 1`` or the channel count changes, the skip connection
    uses a strided 1x1 conv, as in standard ResNets.  Set
    ``spectral=True`` to build the block from spectrally-normalized
    convolutions *without batch norm*: the paper (Section III-C) frames
    parameterized spectral normalization as the replacement for batch
    normalization, and folding BN's ``gamma / sqrt(var)`` scale into the
    operator would destroy the ``sigma = alpha`` control PSN provides.
    The plain variant keeps the classic conv-BN-ReLU structure.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
        spectral: bool = False,
        alpha_init: float | None = None,
    ) -> None:
        def conv(c_in: int, c_out: int, k: int, s: int, p: int) -> Module:
            if spectral:
                # PSN layers carry the learnable bias beta of Eq. (6); it
                # plays the role of batch norm's shift in BN-free blocks.
                return SpectralConv2d(
                    c_in, c_out, k, stride=s, padding=p, bias=True, rng=rng,
                    alpha_init=alpha_init,
                )
            return Conv2d(c_in, c_out, k, stride=s, padding=p, bias=False, rng=rng)

        if spectral:
            body = Sequential(
                conv(in_channels, out_channels, 3, stride, 1),
                ReLU(),
                conv(out_channels, out_channels, 3, 1, 1),
            )
        else:
            body = Sequential(
                conv(in_channels, out_channels, 3, stride, 1),
                BatchNorm2d(out_channels),
                ReLU(),
                conv(out_channels, out_channels, 3, 1, 1),
                BatchNorm2d(out_channels),
            )
        shortcut: Module | None = None
        if stride != 1 or in_channels != out_channels:
            if spectral:
                shortcut = Sequential(conv(in_channels, out_channels, 1, stride, 0))
            else:
                shortcut = Sequential(
                    conv(in_channels, out_channels, 1, stride, 0),
                    BatchNorm2d(out_channels),
                )
        super().__init__(body, shortcut=shortcut, post_activation=ReLU())
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
