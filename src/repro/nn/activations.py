"""Activation layers with registered Lipschitz constants.

The paper's bound (Section III-A) assumes every activation has a globally
bounded first derivative ``C = sup_z dphi/dz``; for Tanh, ReLU and
LeakyReLU (slope <= 1) the constant is 1 and is dropped from the bound.
Each activation here carries its ``lipschitz`` constant so the error-flow
analyzer can include it when it is not 1 (e.g. PReLU with a learned slope
above 1, or a custom gain).
"""

from __future__ import annotations

import numpy as np

from .module import Module, Parameter

__all__ = [
    "Activation",
    "ReLU",
    "LeakyReLU",
    "PReLU",
    "Tanh",
    "Sigmoid",
    "GELU",
    "Identity",
    "ACTIVATIONS",
    "make_activation",
]


class Activation(Module):
    """Base class: element-wise map with a known Lipschitz constant."""

    @property
    def lipschitz(self) -> float:
        """Upper bound on ``|dphi/dz|`` over the activation's domain."""
        raise NotImplementedError


class Identity(Activation):
    """Pass-through activation (used for the final layer of regressors)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output

    @property
    def lipschitz(self) -> float:
        return 1.0


class ReLU(Activation):
    """Rectified linear unit, ``max(0, x)``; Lipschitz constant 1."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, 0.0)

    @property
    def lipschitz(self) -> float:
        return 1.0


class LeakyReLU(Activation):
    """Leaky ReLU with fixed negative slope; Lipschitz ``max(1, slope)``."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)

    @property
    def lipschitz(self) -> float:
        return max(1.0, abs(self.negative_slope))


class PReLU(Activation):
    """Parametric ReLU: the negative slope is learned (shared scalar).

    The Lipschitz constant is ``max(1, |slope|)`` evaluated at the current
    learned value, so the error-flow analyzer reads it after training.
    """

    def __init__(self, init_slope: float = 0.25) -> None:
        super().__init__()
        self.slope = Parameter(np.asarray([init_slope], dtype=np.float32))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        slope = self.slope.data[0]
        return np.where(x > 0, x, slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._x
        negative = x <= 0
        self.slope.grad[0] += float(np.sum(grad_output[negative] * x[negative]))
        slope = self.slope.data[0]
        return np.where(negative, slope * grad_output, grad_output)

    @property
    def lipschitz(self) -> float:
        return max(1.0, abs(float(self.slope.data[0])))


class Tanh(Activation):
    """Hyperbolic tangent; Lipschitz constant 1."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._y**2)

    @property
    def lipschitz(self) -> float:
        return 1.0


class Sigmoid(Activation):
    """Logistic sigmoid; Lipschitz constant 1/4."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-x))
        return self._y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._y * (1.0 - self._y)

    @property
    def lipschitz(self) -> float:
        return 0.25


class GELU(Activation):
    """Gaussian error linear unit (tanh approximation).

    ``sup |dphi/dz|`` is approximately 1.1290 for GELU, attained near
    ``z ~ 1.13``; we store that constant so the bound stays sound.
    """

    _LIPSCHITZ = 1.1290

    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None

    @staticmethod
    def _inner(x: np.ndarray) -> np.ndarray:
        return np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return 0.5 * x * (1.0 + np.tanh(self._inner(x)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._x
        inner = self._inner(x)
        tanh_inner = np.tanh(inner)
        d_inner = np.sqrt(2.0 / np.pi) * (1.0 + 3 * 0.044715 * x**2)
        derivative = 0.5 * (1.0 + tanh_inner) + 0.5 * x * (1.0 - tanh_inner**2) * d_inner
        return grad_output * derivative

    @property
    def lipschitz(self) -> float:
        return self._LIPSCHITZ


ACTIVATIONS: dict[str, type[Activation]] = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "prelu": PReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "gelu": GELU,
    "identity": Identity,
}


def make_activation(name: str) -> Activation:
    """Instantiate an activation by registry name (case-insensitive)."""
    try:
        return ACTIVATIONS[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(ACTIVATIONS))
        raise ValueError(f"unknown activation {name!r}; known: {known}") from None
