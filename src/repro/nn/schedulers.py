"""Learning-rate schedulers.

Small, explicit schedulers operating on an optimizer's ``lr`` attribute;
``step()`` is called once per epoch by the trainer.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .optim import Optimizer

__all__ = ["Scheduler", "StepLR", "CosineAnnealingLR"]


class Scheduler:
    """Base scheduler: tracks the epoch count and the initial rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        if not hasattr(optimizer, "lr"):
            raise ConfigurationError("scheduler requires an optimizer with an lr attribute")
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._rate_at(self.epoch)
        return self.optimizer.lr

    def _rate_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(Scheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ConfigurationError("step_size must be >= 1")
        if not 0 < gamma <= 1:
            raise ConfigurationError("gamma must be in (0, 1]")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def _rate_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(Scheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max < 1:
            raise ConfigurationError("t_max must be >= 1")
        if min_lr < 0:
            raise ConfigurationError("min_lr must be non-negative")
        self.t_max = int(t_max)
        self.min_lr = float(min_lr)

    def _rate_at(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + (self.base_lr - self.min_lr) * 0.5 * (
            1.0 + np.cos(np.pi * progress)
        )
