"""Batch normalization layers.

At inference time batch norm is an affine map per channel; the error-flow
analyzer folds it into the preceding convolution via
:func:`fold_batchnorm_scale`, so the bound sees a single effective linear
operator per conv+BN pair.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .module import Module, Parameter

__all__ = ["BatchNorm1d", "BatchNorm2d", "fold_batchnorm_scale"]


class _BatchNormBase(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache: tuple | None = None

    def inference_scale(self) -> np.ndarray:
        """Per-channel multiplicative factor applied at inference."""
        return self.gamma.data / np.sqrt(self.running_var + self.eps)

    def inference_shift(self) -> np.ndarray:
        """Per-channel additive offset applied at inference."""
        return self.beta.data - self.running_mean * self.inference_scale()

    def _axes(self, x: np.ndarray) -> tuple[int, ...]:
        raise NotImplementedError

    def _reshape(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        shape = [1] * ndim
        shape[1] = self.num_features
        return stat.reshape(shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"batch norm expects {self.num_features} channels, got {x.shape[1]}"
            )
        axes = self._axes(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.size // self.num_features
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            unbiased = var * count / max(count - 1, 1)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * unbiased
            ).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._reshape(mean, x.ndim)) * self._reshape(inv_std, x.ndim)
        self._cache = (x_hat, inv_std, axes)
        return self._reshape(self.gamma.data, x.ndim) * x_hat + self._reshape(
            self.beta.data, x.ndim
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, inv_std, axes = self._cache
        self.gamma.grad += (grad_output * x_hat).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)
        gamma = self._reshape(self.gamma.data, grad_output.ndim)
        grad_x_hat = grad_output * gamma
        if not self.training:
            return grad_x_hat * self._reshape(inv_std, grad_output.ndim)
        mean_g = grad_x_hat.mean(axis=axes, keepdims=True)
        mean_gx = (grad_x_hat * x_hat).mean(axis=axes, keepdims=True)
        return (grad_x_hat - mean_g - x_hat * mean_gx) * self._reshape(
            inv_std, grad_output.ndim
        )


class BatchNorm1d(_BatchNormBase):
    """Batch norm over ``(N, C)`` feature batches."""

    def _axes(self, x: np.ndarray) -> tuple[int, ...]:
        if x.ndim != 2:
            raise ShapeError(f"BatchNorm1d expects (N, C); got {x.shape}")
        return (0,)


class BatchNorm2d(_BatchNormBase):
    """Batch norm over ``(N, C, H, W)`` image batches."""

    def _axes(self, x: np.ndarray) -> tuple[int, ...]:
        if x.ndim != 4:
            raise ShapeError(f"BatchNorm2d expects (N, C, H, W); got {x.shape}")
        return (0, 2, 3)


def fold_batchnorm_scale(conv_matrix: np.ndarray, bn: _BatchNormBase) -> np.ndarray:
    """Fold a batch norm's inference scale into a matricized conv kernel.

    Each row of ``conv_matrix`` produces one output channel, so folding
    multiplies row ``c`` by the BN scale of channel ``c``.  The result is
    the effective linear operator seen at inference, which is what the
    spectral analysis must measure.
    """
    scale = bn.inference_scale()
    if conv_matrix.shape[0] != scale.shape[0]:
        raise ShapeError(
            f"conv rows {conv_matrix.shape[0]} != bn channels {scale.shape[0]}"
        )
    return conv_matrix * scale[:, None]
