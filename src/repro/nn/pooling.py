"""Pooling and reshaping layers for convolutional models."""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .functional import im2col
from .module import Module

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten"]


class MaxPool2d(Module):
    """Max pooling with square window; Lipschitz constant 1 in L2."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self.padding = int(padding)
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"MaxPool2d expects (N, C, H, W); got {x.shape}")
        n, c, h, w = x.shape
        p = self.padding
        # Pad with -inf so padded cells never win the max, then pool per
        # channel by treating channels as batch entries.
        padded = x if p == 0 else np.pad(
            x, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=-np.inf
        )
        kernel = (self.kernel_size, self.kernel_size)
        cols, (out_h, out_w) = im2col(
            padded.reshape(n * c, 1, h + 2 * p, w + 2 * p), kernel, self.stride, 0
        )
        self._argmax = np.argmax(cols, axis=1)
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        out = cols[np.arange(cols.shape[0]), self._argmax]
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        out_h, out_w = self._out_hw
        k = self.kernel_size
        p = self.padding
        grad_cols = np.zeros((n * c * out_h * out_w, k * k), dtype=grad_output.dtype)
        grad_cols[np.arange(grad_cols.shape[0]), self._argmax] = grad_output.reshape(-1)
        from .functional import col2im

        grad = col2im(
            grad_cols, (n * c, 1, h + 2 * p, w + 2 * p), (k, k), self.stride, 0
        )
        grad = grad.reshape(n, c, h + 2 * p, w + 2 * p)
        if p > 0:
            grad = grad[:, :, p : p + h, p : p + w]
        return grad


class AvgPool2d(Module):
    """Average pooling with square window."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self.padding = int(padding)
        self._x_shape: tuple[int, ...] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"AvgPool2d expects (N, C, H, W); got {x.shape}")
        n, c, h, w = x.shape
        kernel = (self.kernel_size, self.kernel_size)
        cols, (out_h, out_w) = im2col(
            x.reshape(n * c, 1, h, w), kernel, self.stride, self.padding
        )
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return cols.mean(axis=1).reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        out_h, out_w = self._out_hw
        k = self.kernel_size
        grad_cols = np.repeat(
            grad_output.reshape(-1, 1) / (k * k), k * k, axis=1
        ).astype(grad_output.dtype)
        from .functional import col2im

        grad = col2im(grad_cols, (n * c, 1, h, w), (k, k), self.stride, self.padding)
        return grad.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"GlobalAvgPool2d expects (N, C, H, W); got {x.shape}")
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        return np.broadcast_to(
            grad_output[:, :, None, None] / (h * w), (n, c, h, w)
        ).astype(grad_output.dtype)


class Flatten(Module):
    """Flatten all non-batch dimensions, ``(N, ...) -> (N, prod(...))``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._x_shape)
