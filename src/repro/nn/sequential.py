"""Sequential container."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Chain of modules applied in order; backward runs in reverse."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers: list[Module] = []
        for index, layer in enumerate(layers):
            self.register_module(str(index), layer)
            self.layers.append(layer)

    def append(self, layer: Module) -> "Sequential":
        self.register_module(str(len(self.layers)), layer)
        self.layers.append(layer)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output
