"""Stateless array helpers shared by layers and losses."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "one_hot", "im2col", "col2im", "conv_output_size"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot floats ``(N, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold image batches into convolution patch columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kh, kw)`` patch size.
    stride, padding:
        Convolution geometry (symmetric zero padding).

    Returns
    -------
    cols, (out_h, out_w):
        ``cols`` has shape ``(N * out_h * out_w, C * kh * kw)``; each row is
        one receptive-field patch, so convolution becomes a single matmul
        against the matricized kernel.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch columns back into an image batch (adjoint of im2col).

    Overlapping patch contributions are summed, which is exactly the
    gradient of :func:`im2col` with respect to its input.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    patches = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += (
                patches[:, :, :, :, i, j]
            )
    if padding > 0:
        return padded[:, :, padding : padding + h, padding : padding + w]
    return padded
