"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so
training runs are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "xavier_normal"]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for dense and conv kernel shapes."""
    if len(shape) == 2:  # (out_features, in_features)
        return shape[1], shape[0]
    if len(shape) == 4:  # (out_channels, in_channels, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape for fan computation: {shape}")


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-style uniform init suited to ReLU-family activations."""
    fan_in, __ = _fan(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-style normal init suited to ReLU-family activations."""
    fan_in, __ = _fan(shape)
    std = gain / np.sqrt(fan_in)
    return (rng.standard_normal(size=shape) * std).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform init suited to Tanh/Sigmoid activations."""
    fan_in, fan_out = _fan(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot normal init suited to Tanh/Sigmoid activations."""
    fan_in, fan_out = _fan(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(size=shape) * std).astype(np.float32)
