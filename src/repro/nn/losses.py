"""Loss functions, including the spectral-norm penalty of Section III-C.

Each loss returns a scalar and provides ``backward()`` yielding the
gradient with respect to the predictions.  The spectral penalty is a
regularizer over the model's PSN ``alpha`` parameters; the paper adds the
squared sum of per-layer spectral norms to the task loss so the learned
Lipschitz budget stays small, which is what makes Inequality (3) tight.
"""

from __future__ import annotations

import numpy as np

from .functional import log_softmax, one_hot, softmax
from .module import Module

__all__ = ["MSELoss", "CrossEntropyLoss", "spectral_penalty", "spectral_penalty_backward"]


class MSELoss:
    """Mean squared error over all elements."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        self._diff = prediction - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        return (2.0 / self._diff.size) * self._diff


class CrossEntropyLoss:
    """Softmax cross entropy over integer class labels."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        log_probs = log_softmax(logits, axis=-1)
        labels = np.asarray(labels, dtype=np.int64)
        self._probs = softmax(logits, axis=-1)
        self._targets = one_hot(labels, logits.shape[-1])
        picked = log_probs[np.arange(labels.shape[0]), labels]
        return float(-np.mean(picked))

    def backward(self) -> np.ndarray:
        n = self._targets.shape[0]
        return (self._probs - self._targets) / n


def spectral_penalty(model: Module, weight: float) -> float:
    """``weight * sum_l alpha_l^2`` over the model's PSN layers.

    Layers participate by exposing a ``spectral_alpha`` property (both
    :class:`~repro.nn.linear.SpectralLinear` and
    :class:`~repro.nn.conv.SpectralConv2d` do).  Models without PSN layers
    contribute zero, so the penalty can be added unconditionally.
    """
    total = 0.0
    for module in model.modules():
        alpha = getattr(module, "spectral_alpha", None)
        if alpha is not None:
            total += float(alpha) ** 2
    return weight * total


def spectral_penalty_backward(model: Module, weight: float) -> None:
    """Accumulate the penalty gradient ``2 * weight * alpha`` in place."""
    for module in model.modules():
        if getattr(module, "spectral_alpha", None) is not None:
            alpha_param = module.alpha
            alpha_param.grad += 2.0 * weight * alpha_param.data
