"""First-order optimizers: SGD (with momentum and weight decay) and Adam.

The paper trains the H2 combustion and EuroSAT models with SGD and the
Borghesi model with Adam; weight decay is the comparison baseline for the
parameterized spectral normalization in Figs. 3 and 4.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: list[Parameter] | object) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum.

    Parameters
    ----------
    parameters:
        Iterable of :class:`Parameter`.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient (0 disables the velocity buffer update).
    weight_decay:
        L2 coefficient added to the gradient (decoupled from the loss).
    """

    def __init__(
        self,
        parameters,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.lr = float(lr)
        self.betas = (float(betas[0]), float(betas[1]))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
