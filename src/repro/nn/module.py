"""Core module system for the numpy neural-network substrate.

The paper's error theory operates on trained weight matrices, so the
substrate provides exactly what scientific surrogate models need: an
explicit, layer-based forward/backward engine (no tape autograd), with
parameters exposed for spectral analysis and post-training quantization.

Every layer derives from :class:`Module` and implements ``forward`` and
``backward``.  ``backward`` receives the gradient of the loss with respect
to the layer output and must (a) accumulate parameter gradients into
``Parameter.grad`` and (b) return the gradient with respect to the layer
input, caching whatever it needs from the forward pass.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

import numpy as np

from ..exceptions import ShapeError

__all__ = ["Parameter", "Module", "HookHandle"]

#: process-wide hook registration ids (monotone, never reused)
_HOOK_IDS = itertools.count()


class HookHandle:
    """Removable registration token returned by ``register_forward_hook``."""

    __slots__ = ("_hooks", "_key")

    def __init__(self, hooks: dict, key: int) -> None:
        self._hooks = hooks
        self._key = key

    def remove(self) -> None:
        """Unregister the hook; safe to call more than once."""
        self._hooks.pop(self._key, None)

    def __enter__(self) -> "HookHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.remove()


class Parameter:
    """A trainable tensor: value plus accumulated gradient.

    Parameters
    ----------
    data:
        Initial value.  Stored as ``float32`` unless another float dtype is
        passed explicitly.
    requires_grad:
        When ``False`` the optimizer skips this parameter (used for frozen
        layers and running statistics exposed as parameters).

    Notes
    -----
    Every assignment to :attr:`data` bumps a monotone version counter
    (optimizer steps, ``load_state_dict``, quantization all assign).
    Bound-evaluation caches key on :meth:`Module.weight_version`, the sum
    of these counters, to invalidate when training moves the weights.
    In-place writes (``param.data[...] = x``) bypass the setter; call
    :meth:`bump_version` after them.
    """

    def __init__(self, data: np.ndarray, requires_grad: bool = True) -> None:
        data = np.asarray(data)
        if not np.issubdtype(data.dtype, np.floating):
            data = data.astype(np.float32)
        self._version = 0
        self._data = data
        self.grad = np.zeros_like(self.data)
        self.requires_grad = requires_grad

    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = value
        self._version += 1

    @property
    def version(self) -> int:
        """Monotone counter of assignments to :attr:`data`."""
        return self._version

    def bump_version(self) -> None:
        """Mark the parameter changed after an in-place ``data`` write."""
        self._version += 1

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape}, requires_grad={self.requires_grad})"


class Module:
    """Base class for layers and models.

    Submodules and parameters assigned as attributes are registered
    automatically, mirroring the familiar torch-style API:

    >>> class Tiny(Module):
    ...     def __init__(self):
    ...         super().__init__()
    ...         self.w = Parameter(np.ones((2, 2)))
    >>> len(list(Tiny().parameters()))
    1
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_hooks", {})
        object.__setattr__(self, "training", True)

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register ``module`` under ``name`` (for list-held submodules)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its submodules."""
        for __, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant, depth first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs, depth first.

        The root module is yielded under the empty name, mirroring the
        familiar torch convention; children are dot-qualified.
        """
        yield (prefix[:-1] if prefix else "", self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- state ----------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Switch this module and all descendants to training mode."""
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        """Switch this module and all descendants to inference mode."""
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def weight_version(self) -> int:
        """Monotone counter over every parameter assignment in the tree.

        The sum of all :attr:`Parameter.version` counters: any optimizer
        step, ``load_state_dict`` or quantization pass increases it, so it
        serves as a cheap staleness key for weight-derived caches (see
        :mod:`repro.perf.cache`).  It never decreases.
        """
        return sum(param.version for param in self.parameters())

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the module tree."""
        total = 0
        for param in self.parameters():
            if trainable_only and not param.requires_grad:
                continue
            total += param.size
        return total

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter values keyed by qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ShapeError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            param = params[name]
            value = np.asarray(value, dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"parameter {name!r}: expected shape {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()
            param.grad = np.zeros_like(param.data)

    # -- hooks ----------------------------------------------------------
    def register_forward_hook(
        self, hook: Callable[["Module", np.ndarray, np.ndarray], None]
    ) -> HookHandle:
        """Call ``hook(module, input, output)`` after every forward pass.

        Hooks observe; their return value is ignored and cannot alter the
        data flow.  The audit layer's lockstep recorder uses them to
        capture intermediate activations without touching layer code.
        Remove via the returned :class:`HookHandle`.
        """
        key = next(_HOOK_IDS)
        self._forward_hooks[key] = hook
        return HookHandle(self._forward_hooks, key)

    # -- compute --------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        output = self.forward(x)
        if self._forward_hooks:
            for hook in tuple(self._forward_hooks.values()):
                hook(self, x, output)
        return output
