"""Dense layers: plain :class:`Linear` and :class:`SpectralLinear` (PSN).

Both layers expose :meth:`effective_weight`, the materialized matrix that
inference actually multiplies by.  The error-flow analyzer, the quantizer
and the codecs all operate on effective weights, so plain and
spectrally-normalized layers are interchangeable downstream.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from . import init as _init
from .module import Module, Parameter
from .spectral import PowerIterationState, spectral_norm

__all__ = ["Linear", "SpectralLinear"]

_INITIALIZERS = {
    "kaiming_uniform": _init.kaiming_uniform,
    "kaiming_normal": _init.kaiming_normal,
    "xavier_uniform": _init.xavier_uniform,
    "xavier_normal": _init.xavier_normal,
}


def _make_weight(
    shape: tuple[int, ...], rng: np.random.Generator | None, weight_init: str
) -> np.ndarray:
    if rng is None:
        rng = np.random.default_rng(0)
    try:
        initializer = _INITIALIZERS[weight_init]
    except KeyError:
        known = ", ".join(sorted(_INITIALIZERS))
        raise ValueError(f"unknown weight_init {weight_init!r}; known: {known}") from None
    return initializer(shape, rng)


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator used for weight initialization.
    weight_init:
        One of ``kaiming_uniform``, ``kaiming_normal``, ``xavier_uniform``,
        ``xavier_normal``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        weight_init: str = "kaiming_uniform",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("in_features and out_features must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(_make_weight((out_features, in_features), rng, weight_init))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        self._x: np.ndarray | None = None

    def effective_weight(self) -> np.ndarray:
        """The matrix applied at inference time."""
        return self.weight.data

    def effective_bias(self) -> np.ndarray | None:
        return None if self.bias is None else self.bias.data

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear({self.in_features}->{self.out_features}) got input width {x.shape[-1]}"
            )
        self._x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._x
        grad_flat = grad_output.reshape(-1, self.out_features)
        x_flat = x.reshape(-1, self.in_features)
        self.weight.grad += grad_flat.T @ x_flat
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=0)
        return grad_output @ self.weight.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class SpectralLinear(Module):
    """Dense layer with parameterized spectral normalization (paper Eq. 6).

    The layer stores a raw matrix ``V`` and learns a scalar ``alpha``; the
    effective weight is ``W = alpha * V / sigma(V)``, whose spectral norm is
    exactly ``|alpha|``.  The learned ``beta`` of Eq. (6) is realised as the
    layer bias.  During training, ``sigma(V)`` is tracked with one power-
    iteration step per forward pass; gradients flow through the
    normalization using the standard spectral-normalization expression.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        weight_init: str = "kaiming_uniform",
        alpha_init: float | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("in_features and out_features must be positive")
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.raw_weight = Parameter(_make_weight((out_features, in_features), rng, weight_init))
        if alpha_init is None:
            # Start as the identity reparameterization of the raw init.
            alpha_init = spectral_norm(self.raw_weight.data)
        self.alpha = Parameter(np.asarray([alpha_init], dtype=np.float32))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        self._power = PowerIterationState.for_matrix(self.raw_weight.data, rng)
        self._x: np.ndarray | None = None
        self._cached: tuple[np.ndarray, float] | None = None
        self._eval_key: tuple | None = None
        self._eval_cache: tuple[np.ndarray, float] | None = None

    # -- weight materialization ------------------------------------------
    def _sigma_and_normalized(self) -> tuple[np.ndarray, float]:
        """Return ``(V / sigma, sigma)``.

        Training uses one cheap power-iteration step (the estimate tracks
        the slowly-moving weights).  Evaluation must normalize by the
        *converged* spectral norm: the error bound assumes the deployed
        weight has spectral norm exactly ``|alpha|``, so an approximate
        sigma here would silently break the guarantee.  The converged
        result is cached until the weights change.
        """
        if self.training:
            sigma = max(self._power.step(self.raw_weight.data, n_steps=1), 1e-12)
            return self.raw_weight.data / sigma, sigma
        key = (id(self.raw_weight.data), self.raw_weight.data.shape)
        if self._eval_key != key:
            sigma = max(spectral_norm(self.raw_weight.data), 1e-12)
            self._eval_cache = (self.raw_weight.data / sigma, sigma)
            self._eval_key = key
        return self._eval_cache

    def effective_weight(self) -> np.ndarray:
        """``alpha * V / sigma(V)`` with a converged sigma estimate."""
        sigma = max(spectral_norm(self.raw_weight.data), 1e-12)
        return (self.raw_weight.data / sigma) * self.alpha.data[0]

    def effective_bias(self) -> np.ndarray | None:
        return None if self.bias is None else self.bias.data

    @property
    def spectral_alpha(self) -> float:
        """The layer's spectral norm after normalization (= |alpha|)."""
        return abs(float(self.alpha.data[0]))

    # -- compute ----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"SpectralLinear({self.in_features}->{self.out_features}) got input "
                f"width {x.shape[-1]}"
            )
        self._x = x
        normalized, sigma = self._sigma_and_normalized()
        self._cached = (normalized, sigma)
        out = x @ (normalized.T * self.alpha.data[0])
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._x
        normalized, sigma = self._cached
        alpha = float(self.alpha.data[0])
        grad_flat = grad_output.reshape(-1, self.out_features)
        x_flat = x.reshape(-1, self.in_features)
        grad_w_eff = grad_flat.T @ x_flat  # gradient wrt alpha * normalized
        # d(alpha)/dL: effective weight = alpha * normalized.
        self.alpha.grad[0] += float(np.sum(grad_w_eff * normalized))
        # Gradient through W_bar = V / sigma(V), sigma differentiated via
        # its singular vectors: dsigma/dV = u v^T.
        grad_w_bar = alpha * grad_w_eff
        u, v = self._power.u, self._power.v
        coupling = float(np.sum(grad_w_bar * normalized))
        self.raw_weight.grad += ((grad_w_bar - coupling * np.outer(u, v)) / sigma).astype(
            self.raw_weight.grad.dtype
        )
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=0)
        return grad_output @ (normalized * alpha)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpectralLinear({self.in_features}, {self.out_features}, "
            f"alpha={float(self.alpha.data[0]):.4f})"
        )
