"""Backend selection and the :class:`CompiledForward` execution front-end.

A *backend* turns a lowered program into one fused callable:

===========  =================================================================
reference    the interpreted per-module dispatch (``model(x)``), unchanged
fused        generated pure-numpy closure, preallocated buffers, in-place ops
numba        njit-compiled kernel over the same lowered program (optional)
===========  =================================================================

``auto`` (the default, also via ``REPRO_BACKEND``) resolves to ``fused``.

:class:`CompiledForward` wraps a model with a chosen backend and keeps
the kernel honest on every call:

* **staleness** — the sum of cached parameter version counters is
  compared per call (a few µs); an optimizer step or re-quantization
  changes it and forces a recompile through the content-addressed
  cache.  In-place ``param.data[...] = ...`` writes bypass the version
  counters — the same caveat as every version-keyed cache in
  :mod:`repro.perf.cache`.
* **transparent fallback** — forward hooks (audit lockstep mode),
  training mode, unsupported modules, or inputs outside the compiled
  shape/dtype envelope route the call through the reference
  interpreter, recording the reason in
  ``backend_fallbacks_total{backend=,reason=}`` and
  :attr:`CompiledForward.last_fallback_reason`.

Compiles are traced as ``backend.compile`` spans and timed into the
``backend_compile_seconds`` histogram.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ...exceptions import ConfigurationError, LoweringError
from ...obs import get_metrics, get_tracer
from ...perf.compile_cache import get_compile_cache, kernel_key, structure_key
from ..module import Module
from .fused import FusedBackend, InstrumentedFusedBackend
from .lowering import constant_bindings, lower
from .numba_backend import NumbaBackend, numba_available

__all__ = [
    "BACKEND_NAMES",
    "CompiledForward",
    "get_backend",
    "resolve_backend_name",
]

BACKEND_NAMES = ("auto", "reference", "fused", "numba")

_BACKENDS = {
    "fused": FusedBackend(),
    "numba": NumbaBackend(),
}

#: the per-op-timing codegen variant; addressed explicitly via
#: ``CompiledForward(..., instrument=True)``, never by backend name
_INSTRUMENTED_FUSED = InstrumentedFusedBackend()

_ENV_INSTRUMENT = "REPRO_INSTRUMENT_OPS"


def _instrument_default() -> bool:
    value = os.environ.get(_ENV_INSTRUMENT, "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")

#: binding names that are runtime support, not model constants
_NON_CONSTANT_BINDINGS = frozenset({"np", "_GELU_C"})


def resolve_backend_name(name: "str | None" = None) -> str:
    """Validated concrete backend name for a requested one.

    ``None`` consults ``REPRO_BACKEND`` and defaults to ``auto``;
    ``auto`` resolves to ``fused``.  Unknown names and ``numba`` without
    an importable numba raise :class:`ConfigurationError`, matching the
    CLI's validation conventions.
    """
    if name is None:
        name = os.environ.get("REPRO_BACKEND") or "auto"
    if not isinstance(name, str) or name.strip().lower() not in BACKEND_NAMES:
        raise ConfigurationError(
            f"backend must be auto|reference|fused|numba, got {name!r}"
        )
    key = name.strip().lower()
    if key == "auto":
        key = "fused"
    if key == "numba" and not numba_available():
        raise ConfigurationError(
            "backend 'numba' requires the optional numba package "
            "(install the repro[numba] extra)"
        )
    return key


def get_backend(name: str):
    """The backend singleton registered under a concrete (resolved) name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(f"no compiled backend named {name!r}") from None


class CompiledForward:
    """A model bound to a backend, safe to call wherever ``model(x)`` was.

    ``backend=None`` resolves via ``REPRO_BACKEND``/``auto``.  With the
    reference backend this is a zero-overhead passthrough.  Compiled
    backends lower once per weight version (asserted by
    ``stats["lowerings"]``), share generated source through the on-disk
    compile cache, and fall back to the interpreter whenever running the
    kernel could change observable behavior.
    """

    def __init__(
        self,
        model: Module,
        backend: "str | None" = None,
        instrument: "bool | None" = None,
    ) -> None:
        self.model = model
        self.backend_name = resolve_backend_name(backend)
        if instrument is None:
            instrument = _instrument_default()
        # per-op timing exists only for the fused codegen; on reference
        # there is no kernel and numba jits one opaque function
        self.instrument = bool(instrument) and self.backend_name == "fused"
        self._modules = list(model.modules())
        self._params = list(model.parameters())
        self._kernel = None
        self._kernel_version: "int | None" = None
        self._unsupported_version: "int | None" = None
        self._unsupported_detail: "str | None" = None
        self.last_fallback_reason: "str | None" = None
        self._reason_gauge: "str | None" = None
        self.stats = {
            "calls": 0,
            "lowerings": 0,
            "compiles": 0,
            "fallbacks": 0,
        }

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.backend_name == "reference":
            return self.model(x)
        self.stats["calls"] += 1
        self.last_fallback_reason = None
        for module in self._modules:
            if module._forward_hooks:
                return self._fallback(x, "forward-hooks")
            if module.training:
                return self._fallback(x, "training-mode")
        version = 0
        for param in self._params:
            version += param.version
        if version == self._unsupported_version:
            return self._fallback(x, "unsupported-module", self._unsupported_detail)
        if self._kernel is None or self._kernel_version != version:
            try:
                self._kernel = self._compile(version)
            except LoweringError as exc:
                self._mark_unsupported(version, str(exc))
                return self._fallback(x, "unsupported-module", str(exc))
            self._kernel_version = version
        reason = self._input_guard(x)
        if reason is not None:
            return self._fallback(x, reason)
        try:
            out = self._kernel(x)
        except LoweringError as exc:  # lazy jit failure (numba)
            self._kernel = None
            self._mark_unsupported(version, str(exc))
            return self._fallback(x, "unsupported-module", str(exc))
        get_metrics().gauge("backend_compiled_active", backend=self.backend_name).set(1.0)
        return out

    @property
    def last_op_seconds(self) -> "list | None":
        """Per-op seconds of the latest instrumented call (else ``None``)."""
        return getattr(self._kernel, "last_op_seconds", None)

    @property
    def op_labels(self) -> "list | None":
        """Labels matching :attr:`last_op_seconds` slots (else ``None``)."""
        return getattr(self._kernel, "op_labels", None)

    # -- internals -----------------------------------------------------

    def _mark_unsupported(self, version: int, detail: str) -> None:
        self._unsupported_version = version
        self._unsupported_detail = detail

    def _fallback(self, x: np.ndarray, reason: str, detail: "str | None" = None) -> np.ndarray:
        self.last_fallback_reason = detail or reason
        self.stats["fallbacks"] += 1
        metrics = get_metrics()
        metrics.counter(
            "backend_fallbacks_total", backend=self.backend_name, reason=reason
        ).inc()
        if metrics.enabled:
            # a serving box silently on the interpreter is an ops-plane
            # fact: 0/1 activity gauge plus an info-style gauge whose
            # ``reason`` label names the *latest* fallback cause
            metrics.gauge("backend_compiled_active", backend=self.backend_name).set(0.0)
            if self._reason_gauge is not None and self._reason_gauge != reason:
                metrics.gauge(
                    "backend_last_fallback_info",
                    backend=self.backend_name,
                    reason=self._reason_gauge,
                ).set(0.0)
            self._reason_gauge = reason
            metrics.gauge(
                "backend_last_fallback_info", backend=self.backend_name, reason=reason
            ).set(1.0)
        return self.model(x)

    def _input_guard(self, x: np.ndarray) -> "str | None":
        if not isinstance(x, np.ndarray) or not np.issubdtype(x.dtype, np.floating):
            return "input-dtype"
        kind, width = self._kernel.program.input_spec
        if kind == "2d":
            if x.ndim != 2 or (width is not None and x.shape[1] != width):
                return "input-shape"
        elif kind == "flat":
            if x.ndim < 2 or (
                width is not None and int(np.prod(x.shape[1:])) != width
            ):
                return "input-shape"
        return None

    def _compile(self, version: int):
        cache = get_compile_cache()
        if self.instrument:
            # the instrumented variant caches under its own backend
            # identity, so timed and fast kernels of one structure
            # coexist at both cache levels
            backend = _INSTRUMENTED_FUSED
        else:
            backend = get_backend(self.backend_name)
        cache_name = backend.name
        program = lower(self.model)
        self.stats["lowerings"] += 1
        constants = sorted(
            (name, value)
            for name, value in constant_bindings(program).items()
            if name not in _NON_CONSTANT_BINDINGS
        )
        kkey = kernel_key(program.signature, cache_name, constants, version)
        kernel = cache.get_kernel(kkey)
        if kernel is not None:
            return kernel
        skey = structure_key(program.signature, cache_name)
        started = time.perf_counter()
        with get_tracer().span(
            "backend.compile", backend=cache_name, weight_version=version
        ):
            source = cache.get_source(skey, program.signature, cache_name)
            if source is None:
                source = backend.generate(program)
                cache.put_source(skey, program.signature, cache_name, source)
            kernel = backend.bind(program, source)
        self.stats["compiles"] += 1
        get_metrics().histogram(
            "backend_compile_seconds", backend=cache_name
        ).observe(time.perf_counter() - started)
        cache.put_kernel(kkey, kernel)
        return kernel
