"""Optional numba backend: njit over the same lowered program.

Numba is an *optional* extra — the import is guarded, availability is
probed lazily, and :func:`~repro.nn.backend.base.resolve_backend_name`
rejects an explicit ``--backend numba`` request when the wheel is
absent, so nothing in this module runs without it.

The generated kernel differs from the fused backend's in two ways
forced by numba's semantics:

* **no ``out=`` recycling** — numba's ``np.dot`` lowering has no out
  parameter, so every op allocates fresh (nopython allocation is cheap
  and the dispatch win dominates);
* **typed scalars as arguments** — numba types Python float literals as
  float64 and would widen float32 math, so every scalar the reference
  uses (slopes, the relu zero, sigmoid's ``1.0``) is passed in already
  cast to the dtype the reference's weak-promotion rules would compute
  in (``x.dtype.type(value)``).  ``np.where(v > Z, v, Z)`` with a typed
  zero is element-wise identical to the reference
  ``np.where(v > 0, v, 0.0)`` including NaN and signed-zero handling.

GELU is not lowered here: the reference multiplies by a float64
``np.sqrt(2/pi)`` scalar, whose promotion against float32 inputs is
numpy-version-dependent — anything we generated could silently diverge
from the interpreter actually running, so GELU models fall back.

Compilation is lazy (njit specializes on first call); any numba typing
or lowering failure is converted to :class:`LoweringError` so the
caller degrades to the reference path instead of crashing.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import LoweringError
from .lowering import LoweredOp, LoweredProgram, _iter_ops

__all__ = ["NumbaBackend", "NumbaKernel", "numba_available", "generate_numba_source"]

_NUMBA = None
_NUMBA_CHECKED = False


def numba_available() -> bool:
    """True when the optional numba package imports cleanly."""
    global _NUMBA, _NUMBA_CHECKED
    if not _NUMBA_CHECKED:
        try:
            import numba  # type: ignore

            _NUMBA = numba
        except Exception:
            _NUMBA = None
        _NUMBA_CHECKED = True
    return _NUMBA is not None


def arg_spec(program: LoweredProgram):
    """Deterministic (names, arrays, raw scalars) for the kernel signature.

    Pre-order walk, so codegen and call-time binding agree across
    processes; ``ONE``/``ZERO`` typed constants close the list.
    """
    names: list = []
    arrays: list = []
    scalars: list = []
    for op in _iter_ops(program.ops):
        if op.kind == "linear":
            names.append(f"W{op.index}_t")
            arrays.append(op.weight_t)
            if op.bias is not None:
                names.append(f"b{op.index}")
                arrays.append(op.bias)
        elif op.kind in ("leaky_relu", "prelu"):
            names.append(f"c{op.index}")
            scalars.append(op.slope)
    names.extend(["ONE", "ZERO"])
    return names, arrays, scalars


class _NumbaCodegen:
    def __init__(self, program: LoweredProgram) -> None:
        self.program = program
        names, _arrays, _scalars = arg_spec(program)
        self.lines = [f"def _numba_forward(x, {', '.join(names)}):"]
        self._counter = 0

    def fresh(self) -> str:
        name = f"v{self._counter}"
        self._counter += 1
        return name

    def line(self, text: str) -> None:
        self.lines.append("    " + text)

    def run(self) -> str:
        out = self.emit_ops(self.program.ops, "x")
        self.line(f"return {out}")
        return "\n".join(self.lines) + "\n"

    def emit_ops(self, ops: "list[LoweredOp]", var: str) -> str:
        for op in ops:
            var = self.emit_op(op, var)
        return var

    def emit_op(self, op: LoweredOp, var: str) -> str:
        if op.kind == "identity":
            return var
        r = self.fresh()
        if op.kind == "flatten":
            self.line(f"{r} = {var}.reshape({var}.shape[0], -1)")
        elif op.kind == "linear":
            self.line(f"{r} = {var} @ W{op.index}_t")
            if op.bias is not None:
                r2 = self.fresh()
                self.line(f"{r2} = {r} + b{op.index}")
                r = r2
        elif op.kind == "relu":
            self.line(f"{r} = np.where({var} > ZERO, {var}, ZERO)")
        elif op.kind in ("leaky_relu", "prelu"):
            self.line(f"{r} = np.where({var} > ZERO, {var}, c{op.index} * {var})")
        elif op.kind == "tanh":
            self.line(f"{r} = np.tanh({var})")
        elif op.kind == "sigmoid":
            self.line(f"{r} = ONE / (ONE + np.exp(-{var}))")
        elif op.kind == "residual":
            branch = self.emit_ops(op.body, var)
            skip = var if op.shortcut is None else self.emit_ops(op.shortcut, var)
            self.line(f"{r} = {branch} + {skip}")
            if op.post is not None:
                r = self.emit_ops(op.post, r)
        else:
            raise LoweringError(f"op {op.kind!r} has no numba lowering")
        return r


def generate_numba_source(program: LoweredProgram) -> str:
    """Deterministic numba-compatible source for ``program``."""
    for op in _iter_ops(program.ops):
        if op.kind == "gelu":
            raise LoweringError(
                "GELU is not lowered to numba (float64-scalar promotion is "
                "numpy-version-dependent); falling back to reference"
            )
    return _NumbaCodegen(program).run()


class NumbaKernel:
    """A jitted kernel plus its per-call typed-scalar binding."""

    def __init__(self, program: LoweredProgram, fn, arrays, scalars) -> None:
        self.program = program
        self.fn = fn
        self.arrays = tuple(arrays)
        self.raw_scalars = tuple(scalars)
        self._typed: dict = {}

    def _scalars(self, dtype: np.dtype) -> tuple:
        key = str(dtype)
        typed = self._typed.get(key)
        if typed is None:
            cast = dtype.type
            typed = tuple(cast(value) for value in self.raw_scalars) + (
                cast(1.0),
                cast(0.0),
            )
            self._typed[key] = typed
        return typed

    def __call__(self, x: np.ndarray) -> np.ndarray:
        try:
            return self.fn(x, *self.arrays, *self._scalars(x.dtype))
        except Exception as exc:  # typing/lowering failures surface lazily
            raise LoweringError(f"numba kernel failed: {exc}") from exc


class NumbaBackend:
    """njit-compiled fused kernel over the lowered program."""

    name = "numba"

    def generate(self, program: LoweredProgram) -> str:
        return generate_numba_source(program)

    def bind(self, program: LoweredProgram, source: str) -> NumbaKernel:
        if not numba_available():  # pragma: no cover - resolve_backend_name gates this
            raise LoweringError("numba is not importable")
        namespace = {"np": np}
        code = compile(source, "<repro-numba-kernel>", "exec")
        exec(code, namespace)
        jitted = _NUMBA.njit(cache=False, fastmath=False)(namespace["_numba_forward"])
        _names, arrays, scalars = arg_spec(program)
        return NumbaKernel(program, jitted, arrays, scalars)
