"""Compiled execution backends for the neural-network layer.

Lower a module tree once (:mod:`~repro.nn.backend.lowering`), compile it
to a single fused callable (:mod:`~repro.nn.backend.fused`, optional
:mod:`~repro.nn.backend.numba_backend`), address the artifacts by
content (:mod:`repro.perf.compile_cache`), and run everything through
:class:`CompiledForward`, which falls back to the interpreted reference
path whenever compiled execution could change observable behavior.
"""

from .base import (
    BACKEND_NAMES,
    CompiledForward,
    get_backend,
    resolve_backend_name,
)
from .fused import (
    FusedBackend,
    FusedKernel,
    InstrumentedFusedBackend,
    InstrumentedFusedKernel,
    generate_fused_source,
    instrumented_op_labels,
)
from .lowering import LoweredOp, LoweredProgram, constant_bindings, lower
from .numba_backend import NumbaBackend, generate_numba_source, numba_available

__all__ = [
    "BACKEND_NAMES",
    "CompiledForward",
    "FusedBackend",
    "FusedKernel",
    "InstrumentedFusedBackend",
    "InstrumentedFusedKernel",
    "LoweredOp",
    "LoweredProgram",
    "NumbaBackend",
    "constant_bindings",
    "generate_fused_source",
    "generate_numba_source",
    "get_backend",
    "instrumented_op_labels",
    "lower",
    "numba_available",
    "resolve_backend_name",
]
