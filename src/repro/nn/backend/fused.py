"""Fused pure-numpy backend: one generated closure per model structure.

The generated source replays the lowered program as straight-line code —
no ``Sequential`` loop, no ``Module.__call__`` hook checks, no per-layer
``isinstance``/shape re-validation — and recycles preallocated matmul
buffers (``np.matmul(..., out=B[slot])``) plus in-place bias adds and
tanh where aliasing rules allow, eliminating most temporary churn.

Bit-exactness with the reference interpreter is the contract, so every
emitted expression is the *identical* numpy expression the reference
layer evaluates — same ufuncs, same operand order, same scalar types:

* weights stay the transposed **view** ``weight.data.T`` (F-contiguous);
  a contiguous copy would route BLAS through a different gemm kernel
  with different rounding;
* ``np.matmul(x, Wt, out=buf)`` into a fresh C-contiguous buffer of the
  result dtype produces the same bytes as ``x @ Wt``; likewise
  ``np.add(v, b, out=v)`` vs ``v + b`` and ``np.tanh(v, out=v)`` vs
  ``np.tanh(v)``;
* ReLU stays ``np.where(v > 0, v, 0.0)`` — ``np.maximum`` treats NaN
  and ``-0.0`` differently and a mask-multiply breaks on ``±inf``;
* PReLU binds the ``np.float32`` scalar the reference reads from its
  slope parameter; LeakyReLU inlines the Python-float slope literal via
  ``repr`` (round-trip exact).

In-place writes are only emitted into buffers or call-owned temporaries
that are not a pending residual-skip operand, and the value returned to
the caller is never a reused buffer (the caller retains outputs; the
next call would overwrite them).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict

import numpy as np

from ...obs import get_metrics
from .lowering import GELU_C, LoweredOp, LoweredProgram, constant_bindings

__all__ = [
    "FusedBackend",
    "FusedKernel",
    "InstrumentedFusedBackend",
    "InstrumentedFusedKernel",
    "generate_fused_source",
    "instrumented_op_labels",
]

#: buffer sets retained per thread (distinct (batch, dtype) pairs)
_BUFFER_SETS = 8


class _Codegen:
    """Emit straight-line source for a lowered program.

    Tracks, per variable, whether it aliases the caller's input, a
    reusable buffer slot, or a call-owned fresh array — the three cases
    that decide where in-place writes are legal and what may be
    returned.  ``tail=True`` marks an op whose result reaches the
    caller unchanged (possibly through trailing ``Identity`` layers):
    tail ops must allocate fresh output instead of handing back a
    buffer.
    """

    def __init__(self, program: LoweredProgram, instrument: bool = False) -> None:
        self.program = program
        self.instrument = bool(instrument)
        signature = "def _fused_forward(x, B, T):" if instrument else "def _fused_forward(x, B):"
        self.lines = [signature]
        self._counter = itertools.count()
        self.kind = {"x": "input"}
        self.protected: set = set()
        self.op_labels: list = []

    def fresh(self) -> str:
        return f"v{next(self._counter)}"

    def line(self, text: str) -> None:
        self.lines.append("    " + text)

    def _time_start(self, label: str) -> "int | None":
        """Open a per-op timing bracket (instrumented codegen only).

        The timing lines wrap exactly the op's own emitted expressions —
        the numpy expressions themselves are untouched, so the
        instrumented kernel stays bit-exact with the fast one.
        """
        if not self.instrument:
            return None
        index = len(self.op_labels)
        self.op_labels.append(label)
        self.line(f"_s{index} = _pcns()")
        return index

    def _time_end(self, index: "int | None") -> None:
        if index is not None:
            self.line(f"T[{index}] += _pcns() - _s{index}")

    def run(self) -> str:
        out = self.emit_ops(self.program.ops, "x", tail=True)
        if self.kind[out] == "buffer":  # safety net; tail logic should prevent this
            safe = self.fresh()
            self.line(f"{safe} = {out}.copy()")
            out = safe
        self.line(f"return {out}")
        return "\n".join(self.lines) + "\n"

    def emit_ops(self, ops: "list[LoweredOp]", var: str, tail: bool) -> str:
        for i, op in enumerate(ops):
            op_tail = tail and all(o.kind == "identity" for o in ops[i + 1 :])
            var = self.emit_op(op, var, op_tail)
        return var

    def _can_inplace(self, var: str, tail: bool) -> bool:
        kind = self.kind[var]
        if kind == "input" or var in self.protected:
            return False
        return not (tail and kind == "buffer")

    def emit_op(self, op: LoweredOp, var: str, tail: bool) -> str:
        if op.kind == "identity":
            return var
        if op.kind == "flatten":
            r = self.fresh()
            self.line(f"{r} = {var}.reshape({var}.shape[0], -1)")
            self.kind[r] = self.kind[var]  # reshape is a view of its operand
            return r
        if op.kind == "linear":
            return self._emit_linear(op, var, tail)
        if op.kind == "residual":
            return self._emit_residual(op, var, tail)
        return self._emit_elementwise(op, var, tail)

    def _emit_elementwise(self, op: LoweredOp, var: str, tail: bool) -> str:
        timer = self._time_start(op.kind)
        if op.kind == "tanh" and self._can_inplace(var, tail):
            self.line(f"np.tanh({var}, out={var})")
            self._time_end(timer)
            return var
        r = self.fresh()
        if op.kind == "relu":
            self.line(f"{r} = np.where({var} > 0, {var}, 0.0)")
        elif op.kind == "leaky_relu":
            self.line(f"{r} = np.where({var} > 0, {var}, {op.slope!r} * {var})")
        elif op.kind == "prelu":
            self.line(f"{r} = np.where({var} > 0, {var}, s{op.index} * {var})")
        elif op.kind == "tanh":
            self.line(f"{r} = np.tanh({var})")
        elif op.kind == "sigmoid":
            self.line(f"{r} = 1.0 / (1.0 + np.exp(-{var}))")
        elif op.kind == "gelu":
            self.line(
                f"{r} = 0.5 * {var} * (1.0 + np.tanh(_GELU_C * "
                f"({var} + 0.044715 * {var}**3)))"
            )
        else:  # pragma: no cover - lowering emits only the kinds above
            raise AssertionError(f"unknown op kind {op.kind!r}")
        self.kind[r] = "fresh"
        self._time_end(timer)
        return r

    def _emit_linear(self, op: LoweredOp, var: str, tail: bool) -> str:
        timer = self._time_start("linear")
        weight = f"W{op.index}_t"
        if op.bias is None:
            r = self.fresh()
            if tail:
                self.line(f"{r} = {var} @ {weight}")
                self.kind[r] = "fresh"
            else:
                self.line(f"{r} = np.matmul({var}, {weight}, out=B[{op.slot}])")
                self.kind[r] = "buffer"
            self._time_end(timer)
            return r
        m = self.fresh()
        self.line(f"{m} = np.matmul({var}, {weight}, out=B[{op.slot}])")
        self.kind[m] = "buffer"
        if not tail and op.inplace_bias_ok and m not in self.protected:
            self.line(f"np.add({m}, b{op.index}, out={m})")
            self._time_end(timer)
            return m
        r = self.fresh()
        self.line(f"{r} = {m} + b{op.index}")
        self.kind[r] = "fresh"
        self._time_end(timer)
        return r

    def _emit_residual(self, op: LoweredOp, var: str, tail: bool) -> str:
        # the skip operand must survive body/shortcut emission unmutated;
        # an enclosing residual may already be protecting it
        added = []
        if var not in self.protected:
            self.protected.add(var)
            added.append(var)
        branch = self.emit_ops(op.body, var, tail=False)
        if branch not in self.protected:
            self.protected.add(branch)
            added.append(branch)
        skip = var if op.shortcut is None else self.emit_ops(op.shortcut, var, tail=False)
        # body/shortcut ops time themselves; this bracket covers only the add
        timer = self._time_start("residual_add")
        r = self.fresh()
        self.line(f"{r} = {branch} + {skip}")
        self._time_end(timer)
        self.kind[r] = "fresh"
        for name in added:
            self.protected.discard(name)
        if op.post is not None:
            r = self.emit_ops(op.post, r, tail)
        return r


def generate_fused_source(program: LoweredProgram, instrument: bool = False) -> str:
    """Deterministic source text for ``program`` (structure only, no weights).

    ``instrument=True`` emits the same expressions bracketed by
    ``perf_counter_ns`` deltas accumulated into a ``T`` list, one slot
    per timed op (linears, element-wise activations, residual adds).
    """
    return _Codegen(program, instrument=instrument).run()


def instrumented_op_labels(program: LoweredProgram) -> list:
    """Per-slot op labels of the instrumented kernel, in ``T`` order.

    Codegen is deterministic, so replaying it is the one way to get
    labels that always match a source text — including one served from
    the disk cache, where no codegen ran to produce the bound source.
    """
    codegen = _Codegen(program, instrument=True)
    codegen.run()
    return list(codegen.op_labels)


_PROBE_DTYPES: dict = {}


def _elementwise_dtype(op: LoweredOp, running: np.dtype) -> np.dtype:
    """Output dtype of an element-wise op, measured, not assumed.

    Scalar/array promotion rules differ between numpy's legacy
    value-based casting and NEP 50; evaluating the reference expression
    on a one-element array gives the answer this interpreter actually
    produces, whichever regime is active.
    """
    key = (op.kind, repr(op.slope), str(running))
    dtype = _PROBE_DTYPES.get(key)
    if dtype is None:
        z = np.ones(1, dtype=running)
        if op.kind == "relu":
            r = np.where(z > 0, z, 0.0)
        elif op.kind in ("leaky_relu", "prelu"):
            r = np.where(z > 0, z, op.slope * z)
        elif op.kind == "tanh":
            r = np.tanh(z)
        elif op.kind == "sigmoid":
            r = 1.0 / (1.0 + np.exp(-z))
        elif op.kind == "gelu":
            r = 0.5 * z * (1.0 + np.tanh(GELU_C * (z + 0.044715 * z**3)))
        else:
            r = z
        dtype = _PROBE_DTYPES[key] = r.dtype
    return dtype


def _propagate_dtypes(ops: "list[LoweredOp]", running: np.dtype, slots: list) -> np.dtype:
    for op in ops:
        if op.kind == "linear":
            out = np.result_type(running, op.weight_t.dtype)
            slots[op.slot] = out
            if op.bias is not None:
                out = np.result_type(out, op.bias.dtype)
            running = out
        elif op.kind == "residual":
            branch = _propagate_dtypes(op.body, running, slots)
            skip = (
                running
                if op.shortcut is None
                else _propagate_dtypes(op.shortcut, running, slots)
            )
            running = np.result_type(branch, skip)
            if op.post is not None:
                running = _propagate_dtypes(op.post, running, slots)
        elif op.kind in ("identity", "flatten"):
            continue
        else:
            running = _elementwise_dtype(op, running)
    return running


def slot_dtypes(program: LoweredProgram, x_dtype) -> list:
    """Per-slot buffer dtypes for an input of ``x_dtype``.

    ``np.matmul(..., out=buf)`` is only bit-identical to ``x @ Wt`` when
    ``buf`` already has the result dtype, so buffers are sized to the
    dtype each matmul would naturally produce.
    """
    slots = [None] * program.n_linear
    _propagate_dtypes(program.ops, np.dtype(x_dtype), slots)
    return slots


class FusedKernel:
    """A bound fused closure plus its per-thread buffer pool.

    Buffers are keyed by ``(batch, input dtype)`` and held in
    ``threading.local`` storage: concurrent pipeline threads never share
    scratch space, and fork-based pools inherit the compiled closure
    for free.
    """

    def __init__(self, program: LoweredProgram, fn) -> None:
        self.program = program
        self.fn = fn
        self._local = threading.local()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x, self._buffers(x))

    def _buffers(self, x: np.ndarray) -> list:
        if not self.program.slot_widths:
            return []
        cache = getattr(self._local, "buffers", None)
        if cache is None:
            cache = self._local.buffers = OrderedDict()
        key = (x.shape[0], str(x.dtype))
        buffers = cache.get(key)
        if buffers is None:
            n = x.shape[0]
            dtypes = slot_dtypes(self.program, x.dtype)
            buffers = [
                np.empty((n, width), dtype=dtype)
                for width, dtype in zip(self.program.slot_widths, dtypes)
            ]
            cache[key] = buffers
            while len(cache) > _BUFFER_SETS:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        return buffers


class InstrumentedFusedKernel(FusedKernel):
    """Fused kernel variant that meters per-op wall time.

    The generated closure accumulates ``perf_counter_ns`` deltas into a
    per-call ``T`` list; this wrapper converts them to seconds, retains
    the latest vector as :attr:`last_op_seconds` and mirrors each slot
    into the ``backend_op_seconds{op,index}`` histogram.
    """

    def __init__(self, program: LoweredProgram, fn, op_labels: list) -> None:
        super().__init__(program, fn)
        self.op_labels = list(op_labels)
        self.last_op_seconds: "list | None" = None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        timings = [0] * len(self.op_labels)
        out = self.fn(x, self._buffers(x), timings)
        seconds = [t / 1e9 for t in timings]
        self.last_op_seconds = seconds
        metrics = get_metrics()
        if metrics.enabled:
            for index, (label, value) in enumerate(zip(self.op_labels, seconds)):
                metrics.histogram(
                    "backend_op_seconds", op=label, index=index
                ).observe(value)
        return out


class FusedBackend:
    """Pure-numpy trace-and-replay linker."""

    name = "fused"

    def generate(self, program: LoweredProgram) -> str:
        return generate_fused_source(program)

    def bind(self, program: LoweredProgram, source: str) -> FusedKernel:
        namespace = constant_bindings(program)
        code = compile(source, "<repro-fused-kernel>", "exec")
        exec(code, namespace)
        return FusedKernel(program, namespace["_fused_forward"])


class InstrumentedFusedBackend(FusedBackend):
    """Opt-in per-op-timing variant of the fused backend.

    Same lowering, same expressions; a distinct :attr:`name` keys its
    source and kernels separately in the compile cache so instrumented
    and fast kernels coexist without evicting each other.
    """

    name = "fused-instr"

    def generate(self, program: LoweredProgram) -> str:
        return generate_fused_source(program, instrument=True)

    def bind(self, program: LoweredProgram, source: str) -> InstrumentedFusedKernel:
        namespace = constant_bindings(program)
        namespace["_pcns"] = time.perf_counter_ns
        code = compile(source, "<repro-fused-instr-kernel>", "exec")
        exec(code, namespace)
        return InstrumentedFusedKernel(
            program, namespace["_fused_forward"], instrumented_op_labels(program)
        )
