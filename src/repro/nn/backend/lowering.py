"""Trace-and-lower linker: flatten a module tree into a linear program.

The interpreted forward pass walks the module tree on every call —
``Sequential.forward`` loops, ``Module.__call__`` checks hooks, every
``Linear.forward`` re-validates shapes and caches its input for a
backward pass inference never runs.  Lowering performs that walk *once*,
producing a :class:`LoweredProgram`: a flat list of primitive ops plus
the constant arrays they apply (weights bound exactly as the reference
layers use them, e.g. the transposed view ``weight.data.T`` — never a
contiguous copy, which could route BLAS through a different gemm kernel
and change the rounding).

Backends consume the program two ways:

* :func:`constant_bindings` — the deterministic name → array map a
  generated kernel closes over (``W3_t``, ``b3``, ``s5`` ...).  Names
  depend only on traversal order, so a source cached on disk by one
  process binds correctly in another.
* :attr:`LoweredProgram.signature` — a structural description (op kinds,
  widths, dtypes, layer config) that keys the compilation cache: two
  models with the same architecture share one generated source, while
  their weights stay in the per-process binding.

Only the module set the paper's MLP workloads exercise is lowered:
``Sequential``, ``Linear``, ``SpectralLinear`` (eval mode), the
element-wise activations, ``Flatten``, ``Identity`` and
``ResidualBlock``.  Anything else raises :class:`LoweringError` and the
caller falls back to the interpreted reference path.  Batch norm is
deliberately unsupported: its running statistics mutate without bumping
parameter version counters, so a compiled kernel could silently go
stale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ...exceptions import LoweringError
from ..activations import (
    GELU,
    Identity,
    LeakyReLU,
    PReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from ..linear import Linear, SpectralLinear
from ..module import Module
from ..pooling import Flatten
from ..residual import ResidualBlock
from ..sequential import Sequential

__all__ = ["LoweredOp", "LoweredProgram", "lower", "constant_bindings"]

#: constant of the GELU tanh approximation, computed with the exact
#: expression the reference layer evaluates per call
GELU_C = np.sqrt(2.0 / np.pi)


@dataclass
class LoweredOp:
    """One primitive of the lowered program.

    ``index`` is the op's position in pre-order traversal; generated
    constant names (``W{index}_t``, ``b{index}``, ``s{index}``) derive
    from it, so source text and constant bindings stay aligned across
    processes.  ``slot`` is the preallocated-buffer slot of a linear op
    (one per linear, in traversal order).
    """

    kind: str
    index: int
    weight_t: "np.ndarray | None" = None
    bias: "np.ndarray | None" = None
    width_in: "int | None" = None
    width_out: "int | None" = None
    slope: object = None
    slot: "int | None" = None
    inplace_bias_ok: bool = False
    body: "list[LoweredOp] | None" = None
    shortcut: "list[LoweredOp] | None" = None
    post: "list[LoweredOp] | None" = None


@dataclass
class LoweredProgram:
    """A flattened model: ops, constants, buffer plan and cache identity."""

    ops: "list[LoweredOp]"
    signature: str
    slot_widths: "list[int]" = field(default_factory=list)
    weights_dtype: np.dtype = np.dtype(np.float32)
    #: ("2d", width) / ("flat", width) / ("any", None): cheap per-call
    #: input guard replacing the reference layers' ShapeError checks
    input_spec: tuple = ("any", None)

    @property
    def n_linear(self) -> int:
        return len(self.slot_widths)


_ELEMENTWISE = {
    ReLU: "relu",
    Tanh: "tanh",
    Sigmoid: "sigmoid",
    GELU: "gelu",
    Identity: "identity",
}


def _lower_module(module: Module, counter, slots: "list[int]") -> "list[LoweredOp]":
    """Pre-order lowering of one module into primitive ops."""
    if isinstance(module, Sequential):
        ops: "list[LoweredOp]" = []
        for layer in module.layers:
            ops.extend(_lower_module(layer, counter, slots))
        return ops
    index = next(counter)
    kind = _ELEMENTWISE.get(type(module))
    if kind is not None:
        return [LoweredOp(kind=kind, index=index)]
    if isinstance(module, LeakyReLU):
        return [LoweredOp(kind="leaky_relu", index=index, slope=float(module.negative_slope))]
    if isinstance(module, PReLU):
        # bind the np.float32 scalar exactly as the reference reads it;
        # the slope Parameter is version-tracked, so a learned change
        # invalidates the kernel
        return [LoweredOp(kind="prelu", index=index, slope=module.slope.data[0])]
    if isinstance(module, Flatten):
        return [LoweredOp(kind="flatten", index=index)]
    if isinstance(module, Linear):
        weight_t = module.weight.data.T  # transposed VIEW, as the reference multiplies
        bias = None if module.bias is None else module.bias.data
        return [_linear_op(index, weight_t, bias, module.in_features, module.out_features, slots)]
    if isinstance(module, SpectralLinear):
        if module.training:
            raise LoweringError(
                "SpectralLinear in training mode uses a power-iteration "
                "sigma estimate that mutates per call; compiled backends "
                "require eval()"
            )
        normalized, _sigma = module._sigma_and_normalized()
        # exactly the rhs the reference builds per call:
        # x @ (normalized.T * alpha) — materialized once at compile time
        weight_t = normalized.T * module.alpha.data[0]
        bias = None if module.bias is None else module.bias.data
        return [_linear_op(index, weight_t, bias, module.in_features, module.out_features, slots)]
    if isinstance(module, ResidualBlock):
        body = _lower_module(module.body, counter, slots)
        shortcut = (
            None if module.shortcut is None else _lower_module(module.shortcut, counter, slots)
        )
        post = (
            None
            if module.post_activation is None
            else _lower_module(module.post_activation, counter, slots)
        )
        return [LoweredOp(kind="residual", index=index, body=body, shortcut=shortcut, post=post)]
    raise LoweringError(
        f"module {type(module).__name__} has no lowering rule; compiled "
        "backends fall back to the interpreted reference path"
    )


def _linear_op(index, weight_t, bias, width_in, width_out, slots) -> LoweredOp:
    slot = len(slots)
    slots.append(int(width_out))
    inplace_ok = bias is not None and np.result_type(weight_t.dtype, bias.dtype) == weight_t.dtype
    return LoweredOp(
        kind="linear",
        index=index,
        weight_t=weight_t,
        bias=bias,
        width_in=int(width_in),
        width_out=int(width_out),
        slot=slot,
        inplace_bias_ok=inplace_ok,
    )


def _op_signature(op: LoweredOp) -> str:
    if op.kind == "linear":
        bias = "none" if op.bias is None else str(op.bias.dtype)
        return (
            f"linear({op.width_in}->{op.width_out},{op.weight_t.dtype},"
            f"bias={bias},inplace={int(op.inplace_bias_ok)})"
        )
    if op.kind == "leaky_relu":
        return f"leaky_relu({op.slope!r})"
    if op.kind == "residual":
        body = _sig(op.body)
        shortcut = "id" if op.shortcut is None else _sig(op.shortcut)
        post = "none" if op.post is None else _sig(op.post)
        return f"residual[body=({body});skip=({shortcut});post=({post})]"
    return op.kind


def _sig(ops: "list[LoweredOp]") -> str:
    return ";".join(_op_signature(op) for op in ops)


def _input_spec(ops: "list[LoweredOp]") -> tuple:
    """The cheapest check guaranteeing the kernel sees what it expects."""
    seen_flatten = False
    for op in ops:
        if op.kind == "linear":
            return ("flat" if seen_flatten else "2d", op.width_in)
        if op.kind == "flatten":
            seen_flatten = True
            continue
        if op.kind == "residual":
            inner = _input_spec(op.body)
            if inner[0] == "any":
                inner = ("2d", None)
            if seen_flatten and inner[0] == "2d":
                inner = ("flat", inner[1])
            return inner
        # element-wise ops preserve shape: keep scanning
    if seen_flatten:
        return ("flat", None)
    return ("any", None)


def lower(model: Module) -> LoweredProgram:
    """Lower ``model`` into a :class:`LoweredProgram`.

    Raises :class:`~repro.exceptions.LoweringError` on any module without
    a lowering rule (the caller falls back to the reference path).
    """
    counter = itertools.count()
    slots: "list[int]" = []
    ops = _lower_module(model, counter, slots)
    weights = [op.weight_t for op in _iter_ops(ops) if op.weight_t is not None]
    weights_dtype = (
        np.result_type(*(w.dtype for w in weights)) if weights else np.dtype(np.float32)
    )
    return LoweredProgram(
        ops=ops,
        signature=_sig(ops),
        slot_widths=slots,
        weights_dtype=np.dtype(weights_dtype),
        input_spec=_input_spec(ops),
    )


def _iter_ops(ops: "list[LoweredOp]"):
    for op in ops:
        yield op
        for sub in (op.body, op.shortcut, op.post):
            if sub:
                yield from _iter_ops(sub)


def constant_bindings(program: LoweredProgram) -> dict:
    """Deterministic name → constant map a generated kernel closes over."""
    bindings: dict = {"np": np, "_GELU_C": GELU_C}
    for op in _iter_ops(program.ops):
        if op.kind == "linear":
            bindings[f"W{op.index}_t"] = op.weight_t
            if op.bias is not None:
                bindings[f"b{op.index}"] = op.bias
        elif op.kind == "prelu":
            bindings[f"s{op.index}"] = op.slope
    return bindings
