"""Upsampling and channel concatenation — U-Net plumbing.

Both layers carry known L2 Lipschitz behaviour, which is what the
error-flow extension for U-Nets (paper Section VI) consumes:

* nearest-neighbour x2 upsampling copies every value four times, so it
  scales an L2 perturbation by exactly 2;
* channel concatenation satisfies
  ``||[a; b]||_2 = sqrt(||a||^2 + ||b||^2) <= ||a|| + ||b||`` — additive,
  like a residual join.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .module import Module

__all__ = ["Upsample2d", "ConcatChannels"]


class Upsample2d(Module):
    """Nearest-neighbour spatial upsampling by an integer factor."""

    #: L2 gain of the operator: each value appears ``scale**2`` times.
    def __init__(self, scale: int = 2) -> None:
        super().__init__()
        if scale < 1:
            raise ShapeError("scale must be >= 1")
        self.scale = int(scale)

    @property
    def l2_gain(self) -> float:
        return float(self.scale)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"Upsample2d expects (N, C, H, W); got {x.shape}")
        return x.repeat(self.scale, axis=2).repeat(self.scale, axis=3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        s = self.scale
        n, c, h, w = grad_output.shape
        reshaped = grad_output.reshape(n, c, h // s, s, w // s, s)
        return reshaped.sum(axis=(3, 5))


class ConcatChannels(Module):
    """Concatenate two tensors along the channel axis.

    Used via explicit calls (``forward(a, b)``); ``backward`` returns the
    gradient split back into the two inputs.
    """

    def __init__(self) -> None:
        super().__init__()
        self._split: int | None = None

    def __call__(self, a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:  # type: ignore[override]
        return self.forward(a, b)

    def forward(self, a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:  # type: ignore[override]
        if b is None:
            raise ShapeError("ConcatChannels.forward needs two tensors")
        if a.shape[0] != b.shape[0] or a.shape[2:] != b.shape[2:]:
            raise ShapeError(
                f"concat shapes incompatible: {a.shape} vs {b.shape}"
            )
        self._split = a.shape[1]
        return np.concatenate([a, b], axis=1)

    def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray, np.ndarray]:  # type: ignore[override]
        return grad_output[:, : self._split], grad_output[:, self._split :]
