"""Spectral-norm estimation and parameterized spectral normalization (PSN).

The paper (Section III-C) trains networks with

    W_PSN = (W / sigma_W) * alpha + beta

where ``alpha`` (a learned scalar per layer) becomes the layer's exact
spectral norm and ``beta`` acts as the usual bias shift.  Constraining the
spectral norms directly is what makes the error bound of Inequality (3)
tight and predictable.

This module provides:

* :func:`spectral_norm` — the largest singular value of a matrix via the
  power iteration of von Mises & Pollaczek-Geiringer (paper ref. [17]);
* :class:`PowerIterationState` — persistent singular-vector estimates used
  during training, one normalization step per forward pass in the style of
  Miyato et al. (paper ref. [19]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["spectral_norm", "spectral_norm_exact", "PowerIterationState"]


def spectral_norm(
    matrix: np.ndarray,
    n_iterations: int = 200,
    tol: float = 1e-9,
    rng: np.random.Generator | None = None,
) -> float:
    """Largest singular value of ``matrix`` via power iteration.

    Parameters
    ----------
    matrix:
        2-D array.  Higher-rank weight tensors (conv kernels) must be
        matricized by the caller.
    n_iterations:
        Maximum power-iteration steps.
    tol:
        Relative change in the estimate below which iteration stops.
    rng:
        Source of the random starting vector; a fixed default keeps the
        result deterministic.

    Returns
    -------
    float
        An estimate of ``sigma_max(matrix)`` accurate to roughly ``tol``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"spectral_norm expects a 2-D matrix, got shape {matrix.shape}")
    if matrix.size == 0:
        return 0.0
    if rng is None:
        rng = np.random.default_rng(0)
    v = rng.standard_normal(matrix.shape[1])
    v /= np.linalg.norm(v)
    sigma = 0.0
    for __ in range(n_iterations):
        u = matrix @ v
        u_norm = np.linalg.norm(u)
        if u_norm == 0.0:
            return 0.0
        u /= u_norm
        v = matrix.T @ u
        v_norm = np.linalg.norm(v)
        if v_norm == 0.0:
            return 0.0
        v /= v_norm
        new_sigma = float(u @ (matrix @ v))
        if sigma and abs(new_sigma - sigma) <= tol * abs(sigma):
            sigma = new_sigma
            break
        sigma = new_sigma
    return abs(sigma)


def spectral_norm_exact(matrix: np.ndarray) -> float:
    """Largest singular value via full SVD (reference implementation)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.size == 0:
        return 0.0
    return float(np.linalg.svd(matrix, compute_uv=False)[0])


@dataclass
class PowerIterationState:
    """Persistent left/right singular-vector estimates for one weight.

    During training we run a single power-iteration step per forward pass
    (the estimates track the slowly-moving weights), which is the standard
    spectral-normalization trick and keeps the per-step cost at two
    matrix-vector products.
    """

    u: np.ndarray
    v: np.ndarray
    sigma: float = 0.0
    _steps: int = field(default=0, repr=False)

    @classmethod
    def for_matrix(cls, matrix: np.ndarray, rng: np.random.Generator) -> "PowerIterationState":
        u = rng.standard_normal(matrix.shape[0])
        u /= np.linalg.norm(u)
        v = rng.standard_normal(matrix.shape[1])
        v /= np.linalg.norm(v)
        state = cls(u=u, v=v)
        # Warm up so the very first training step already sees a usable
        # estimate instead of a random direction.
        for __ in range(10):
            state.step(matrix)
        return state

    def step(self, matrix: np.ndarray, n_steps: int = 1) -> float:
        """Advance the power iteration against ``matrix``; return sigma."""
        matrix = np.asarray(matrix, dtype=np.float64)
        for __ in range(n_steps):
            v = matrix.T @ self.u
            v_norm = np.linalg.norm(v)
            if v_norm == 0.0:
                self.sigma = 0.0
                return 0.0
            self.v = v / v_norm
            u = matrix @ self.v
            u_norm = np.linalg.norm(u)
            if u_norm == 0.0:
                self.sigma = 0.0
                return 0.0
            self.u = u / u_norm
        self.sigma = float(self.u @ (matrix @ self.v))
        self._steps += n_steps
        return abs(self.sigma)
