"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array had a shape incompatible with the requested operation."""


class ConfigurationError(ReproError, ValueError):
    """A component was configured with invalid or contradictory options."""


class CompressionError(ReproError):
    """A codec failed to compress or decompress a payload."""


class IntegrityError(CompressionError):
    """Stored or decoded data failed an integrity check.

    Raised when a blob's checksum does not match its contents, when a
    serialized blob is truncated or structurally inconsistent, or when a
    decompressed array contains non-finite values.  Subclasses
    :class:`CompressionError` so existing corruption handlers keep
    working.
    """


class ProtocolError(ReproError):
    """A distributed-execution peer violated the wire protocol.

    Raised on malformed frames, unexpected message types, oversized
    payloads and connections that close mid-frame.  Handshake-level
    *identity* failures (plan fingerprint or weights mismatch) raise
    :class:`IntegrityError` instead: they mean the bytes were fine but
    the computation would not have been the same one.
    """


class ContractViolation(ReproError):
    """An achieved error escaped its negotiated tolerance.

    Carries a structured diagnostic so callers can report *where* the
    error contract broke, not just that it did.

    Attributes
    ----------
    codec:
        Name of the codec whose output violated the contract (if known).
    stage:
        Pipeline stage at which the violation was detected
        (e.g. ``"decompress"``, ``"qoi"``).
    norm:
        Norm the contract is expressed in (``"linf"`` or ``"l2"``).
    expected:
        The negotiated error bound.
    achieved:
        The measured error that exceeded it.
    """

    def __init__(
        self,
        message: str,
        *,
        codec: str | None = None,
        stage: str | None = None,
        norm: str | None = None,
        expected: float | None = None,
        achieved: float | None = None,
    ) -> None:
        super().__init__(message)
        self.codec = codec
        self.stage = stage
        self.norm = norm
        self.expected = expected
        self.achieved = achieved


class ToleranceError(ReproError, ValueError):
    """A requested error tolerance is invalid or cannot be satisfied."""


class LoweringError(ReproError):
    """A model could not be lowered to a compiled backend's program.

    Raised when the trace-and-lower linker meets a module it has no
    primitive for (convolutions, batch norm, attention, ...).  Callers
    that want execution rather than a diagnosis — the pipeline's
    :class:`~repro.nn.backend.CompiledForward` — catch it and fall back
    to the interpreted reference path, recording the reason.
    """


class QuantizationError(ReproError):
    """Weight or activation quantization failed."""


class TrainingError(ReproError):
    """Model training diverged or was misconfigured."""


class PlanningError(ReproError, ValueError):
    """The tolerance planner could not produce a feasible configuration."""
