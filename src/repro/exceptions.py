"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array had a shape incompatible with the requested operation."""


class ConfigurationError(ReproError, ValueError):
    """A component was configured with invalid or contradictory options."""


class CompressionError(ReproError):
    """A codec failed to compress or decompress a payload."""


class ToleranceError(ReproError, ValueError):
    """A requested error tolerance is invalid or cannot be satisfied."""


class QuantizationError(ReproError):
    """Weight or activation quantization failed."""


class TrainingError(ReproError):
    """Model training diverged or was misconfigured."""


class PlanningError(ReproError, ValueError):
    """The tolerance planner could not produce a feasible configuration."""
