"""Runtime integrity guards for the error-bounded pipeline.

The paper's end-to-end guarantee only holds for data that actually obeys
its contracts; these guards are the runtime checks that turn a silent
violation into a structured, typed diagnostic at the stage where it
happened.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ContractViolation, IntegrityError
from ..obs import get_metrics

__all__ = ["screen_finite", "check_contract"]


def screen_finite(
    array: np.ndarray, stage: str, name: str | None = None
) -> np.ndarray:
    """Raise :class:`IntegrityError` if ``array`` contains NaN or Inf.

    Returns the array unchanged so the guard can be used inline:
    ``samples = screen_finite(codec.decompress(blob), "decompress")``.
    """
    array = np.asarray(array)
    if not np.issubdtype(array.dtype, np.floating):
        return array
    finite = np.isfinite(array)
    if finite.all():
        return array
    bad = int(array.size - int(finite.sum()))
    nan_count = int(np.isnan(array).sum())
    label = f" in {name!r}" if name else ""
    get_metrics().counter("integrity_failures_total", stage=stage).inc()
    raise IntegrityError(
        f"non-finite values detected at stage {stage!r}{label}: "
        f"{bad}/{array.size} entries ({nan_count} NaN, {bad - nan_count} Inf)"
    )


def check_contract(
    achieved: float,
    expected: float,
    *,
    codec: str,
    stage: str,
    norm: str = "linf",
    slack: float = 0.0,
) -> float:
    """Raise :class:`ContractViolation` if ``achieved`` exceeds ``expected``.

    ``slack`` widens the bound multiplicatively (``expected * (1+slack)``)
    for callers that tolerate floating-point round-off in the measurement
    itself.  Returns the achieved error for chaining.
    """
    achieved = float(achieved)
    expected = float(expected)
    if not np.isfinite(achieved):
        get_metrics().counter("contract_violations_total", stage=stage, codec=codec).inc()
        raise ContractViolation(
            f"achieved {norm} error at stage {stage!r} is non-finite "
            f"(codec {codec!r}, bound {expected:.3e})",
            codec=codec,
            stage=stage,
            norm=norm,
            expected=expected,
            achieved=achieved,
        )
    if achieved > expected * (1.0 + slack):
        get_metrics().counter("contract_violations_total", stage=stage, codec=codec).inc()
        raise ContractViolation(
            f"error contract violated at stage {stage!r}: codec {codec!r} "
            f"achieved {norm} error {achieved:.6e} exceeds the negotiated "
            f"bound {expected:.6e}",
            codec=codec,
            stage=stage,
            norm=norm,
            expected=expected,
            achieved=achieved,
        )
    return achieved
