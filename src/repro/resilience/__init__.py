"""Data-integrity layer: fault injection, runtime guards, degradation.

On real HPC storage, silent data corruption is an expected event.  This
subsystem makes the pipeline's error contract *enforceable at runtime*:

* :mod:`~repro.resilience.inject` — deterministic corruption generators
  (bit flips, truncation, header tampering, NaN/Inf poisoning) used by
  the test suite to prove detection coverage;
* :mod:`~repro.resilience.guards` — runtime checks (finite screening,
  achieved-error-vs-contract) raising structured typed errors;
* :mod:`~repro.resilience.policy` — graceful-degradation policies
  (``raise`` / ``recompress-from-source`` / ``fallback-lossless``)
  shared by :class:`~repro.io.store.DatasetStore` and
  :class:`~repro.core.pipeline.InferencePipeline`;
* :mod:`~repro.resilience.retry` — bounded exponential backoff with
  deterministic jitter (:class:`RetryPolicy`, :func:`retry_call`);
* :mod:`~repro.resilience.supervisor` — fault-tolerant process-based
  worker pool (heartbeats, deadlines, respawn, quarantine, circuit
  breaker) powering ``InferencePipeline.execute_chunked``.
"""

from .guards import check_contract, screen_finite
from .inject import (
    CHAOS_ENV_VAR,
    ChaosError,
    ChaosInjector,
    ChaosPartition,
    ChaosRule,
    FaultInjector,
    blob_corruptions,
    corrupt_file,
    corrupt_header_byte,
    corrupt_magic,
    corrupt_payload_byte,
    corrupt_result,
    corrupt_version,
    flip_bit,
    poison_inf,
    poison_nan,
    truncate,
)
from .policy import (
    CorruptionPolicy,
    record_audit_violation,
    record_recovery,
    record_retry,
    resolve_policy,
)
from .retry import RetryPolicy, retry_call
from .supervisor import (
    CircuitBreaker,
    SupervisedPool,
    SupervisionReport,
    TaskOutcome,
    fork_available,
)

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosError",
    "ChaosInjector",
    "ChaosPartition",
    "ChaosRule",
    "CircuitBreaker",
    "CorruptionPolicy",
    "RetryPolicy",
    "SupervisedPool",
    "SupervisionReport",
    "TaskOutcome",
    "corrupt_result",
    "fork_available",
    "record_audit_violation",
    "record_recovery",
    "record_retry",
    "retry_call",
    "FaultInjector",
    "blob_corruptions",
    "check_contract",
    "corrupt_file",
    "corrupt_header_byte",
    "corrupt_magic",
    "corrupt_payload_byte",
    "corrupt_version",
    "flip_bit",
    "poison_inf",
    "poison_nan",
    "resolve_policy",
    "screen_finite",
    "truncate",
]
