"""Deterministic fault injection for blobs, cache files and arrays.

On production HPC storage silent data corruption is an expected event,
not an exception.  This module provides the corruption *generators* the
test suite uses to prove the integrity layer catches every class it
claims to: bit flips, truncations, header tampering and NaN/Inf
poisoning.  All injectors are pure functions of their arguments — the
same call always produces the same corruption — so failures reproduce
exactly.

Byte-level injectors take and return ``bytes``; array injectors take and
return ``np.ndarray`` copies; :func:`corrupt_file` lifts any byte-level
injector onto a file path (atomically, so a crashed injector never
leaves a torn file — the harness must not itself be a corruption
source).
"""

from __future__ import annotations

import os
import struct
import tempfile
from typing import Callable, Iterator

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "flip_bit",
    "truncate",
    "corrupt_magic",
    "corrupt_version",
    "corrupt_header_byte",
    "corrupt_payload_byte",
    "poison_nan",
    "poison_inf",
    "corrupt_file",
    "blob_corruptions",
    "FaultInjector",
]

# v2 prelude: 4 magic + 2 version + 4 header_len + 4 crc32
_V2_PRELUDE = 14


# -- byte-level injectors ---------------------------------------------------
def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Flip one bit of ``data`` (bit 0 = LSB of byte 0)."""
    if not 0 <= bit_index < 8 * len(data):
        raise ConfigurationError(
            f"bit index {bit_index} out of range for {len(data)} bytes"
        )
    out = bytearray(data)
    out[bit_index // 8] ^= 1 << (bit_index % 8)
    return bytes(out)


def truncate(data: bytes, length: int) -> bytes:
    """Keep only the first ``length`` bytes (a torn write / short read)."""
    if length < 0:
        raise ConfigurationError(f"truncation length must be >= 0, got {length}")
    return data[:length]


def corrupt_magic(data: bytes) -> bytes:
    """Overwrite the 4-byte magic with an alien signature."""
    return b"XBLB" + data[4:]


def corrupt_version(data: bytes, version: int = 0x7FFF) -> bytes:
    """Rewrite the version field to an unsupported value."""
    return data[:4] + struct.pack("<H", version) + data[6:]


def _header_region(data: bytes) -> tuple[int, int]:
    """(start, end) byte offsets of the JSON header in a v2 blob."""
    if len(data) < _V2_PRELUDE:
        raise ConfigurationError("blob too short to locate its header")
    (header_length,) = struct.unpack_from("<I", data, 6)
    return _V2_PRELUDE, min(_V2_PRELUDE + header_length, len(data))


def corrupt_header_byte(data: bytes, offset: int = 0, bit: int = 0) -> bytes:
    """Flip one bit inside the JSON header region."""
    start, end = _header_region(data)
    if start + offset >= end:
        raise ConfigurationError(
            f"header offset {offset} outside header region [{start}, {end})"
        )
    return flip_bit(data, 8 * (start + offset) + bit)


def corrupt_payload_byte(data: bytes, offset: int = 0, bit: int = 0) -> bytes:
    """Flip one bit inside the payload region."""
    __, end = _header_region(data)
    if end + offset >= len(data):
        raise ConfigurationError(
            f"payload offset {offset} outside payload region [{end}, {len(data)})"
        )
    return flip_bit(data, 8 * (end + offset) + bit)


# -- array-level injectors --------------------------------------------------
def _poison(
    array: np.ndarray, value: float, fraction: float, seed: int
) -> np.ndarray:
    if not 0 < fraction <= 1:
        raise ConfigurationError(f"poison fraction must be in (0, 1], got {fraction}")
    out = np.array(array, dtype=np.result_type(array.dtype, np.float32), copy=True)
    flat = out.reshape(-1)
    count = max(1, int(round(fraction * flat.size)))
    rng = np.random.default_rng(seed)
    flat[rng.choice(flat.size, size=count, replace=False)] = value
    return out


def poison_nan(array: np.ndarray, fraction: float = 0.01, seed: int = 0) -> np.ndarray:
    """Return a copy with a deterministic subset of entries set to NaN."""
    return _poison(array, np.nan, fraction, seed)


def poison_inf(array: np.ndarray, fraction: float = 0.01, seed: int = 0) -> np.ndarray:
    """Return a copy with a deterministic subset of entries set to +Inf."""
    return _poison(array, np.inf, fraction, seed)


# -- file-level lifting -----------------------------------------------------
def corrupt_file(path: str, injector: Callable[[bytes], bytes]) -> None:
    """Apply a byte-level injector to a file in place (atomic rewrite)."""
    with open(path, "rb") as handle:
        data = handle.read()
    corrupted = injector(data)
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(corrupted)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


# -- corruption matrix ------------------------------------------------------
def blob_corruptions(
    data: bytes, truncation_step: int = 16
) -> Iterator[tuple[str, bytes]]:
    """Yield ``(name, corrupted)`` pairs covering every corruption class.

    The matrix spans: bad magic, unsupported version, a bit flip in the
    header, a bit flip in the payload, and truncation at every
    ``truncation_step``-byte boundary.  Tests iterate this to assert no
    corrupted variant ever decodes silently.
    """
    yield "bad-magic", corrupt_magic(data)
    yield "bad-version", corrupt_version(data)
    start, end = _header_region(data)
    yield "header-bitflip", corrupt_header_byte(data, offset=(end - start) // 2)
    if end < len(data):
        yield "payload-bitflip", corrupt_payload_byte(data, offset=(len(data) - end) // 2)
    for length in range(0, len(data), truncation_step):
        yield f"truncate-{length}", truncate(data, length)


class FaultInjector:
    """Seeded convenience wrapper choosing corruption sites pseudo-randomly.

    Where the module-level functions take explicit offsets, the injector
    draws them from a deterministic :class:`numpy.random.Generator`, so a
    stress loop can hammer many distinct corruption sites while staying
    reproducible from a single seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def flip_random_bit(self, data: bytes) -> bytes:
        return flip_bit(data, int(self._rng.integers(0, 8 * len(data))))

    def truncate_randomly(self, data: bytes) -> bytes:
        return truncate(data, int(self._rng.integers(0, len(data))))

    def poison(self, array: np.ndarray, fraction: float = 0.01) -> np.ndarray:
        value = float(self._rng.choice([np.nan, np.inf, -np.inf]))
        return _poison(array, value, fraction, int(self._rng.integers(0, 2**31)))

    def corrupt_file_randomly(self, path: str) -> None:
        corrupt_file(path, self.flip_random_bit)
