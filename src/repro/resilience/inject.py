"""Deterministic fault injection for blobs, cache files and arrays.

On production HPC storage silent data corruption is an expected event,
not an exception.  This module provides the corruption *generators* the
test suite uses to prove the integrity layer catches every class it
claims to: bit flips, truncations, header tampering and NaN/Inf
poisoning.  All injectors are pure functions of their arguments — the
same call always produces the same corruption — so failures reproduce
exactly.

Byte-level injectors take and return ``bytes``; array injectors take and
return ``np.ndarray`` copies; :func:`corrupt_file` lifts any byte-level
injector onto a file path (atomically, so a crashed injector never
leaves a torn file — the harness must not itself be a corruption
source).
"""

from __future__ import annotations

import copy
import os
import signal
import struct
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "flip_bit",
    "truncate",
    "corrupt_magic",
    "corrupt_version",
    "corrupt_header_byte",
    "corrupt_payload_byte",
    "poison_nan",
    "poison_inf",
    "corrupt_file",
    "blob_corruptions",
    "corrupt_result",
    "ChaosError",
    "ChaosPartition",
    "ChaosRule",
    "ChaosInjector",
    "FaultInjector",
    "CHAOS_ENV_VAR",
]

# v2 prelude: 4 magic + 2 version + 4 header_len + 4 crc32
_V2_PRELUDE = 14


# -- byte-level injectors ---------------------------------------------------
def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Flip one bit of ``data`` (bit 0 = LSB of byte 0)."""
    if not 0 <= bit_index < 8 * len(data):
        raise ConfigurationError(
            f"bit index {bit_index} out of range for {len(data)} bytes"
        )
    out = bytearray(data)
    out[bit_index // 8] ^= 1 << (bit_index % 8)
    return bytes(out)


def truncate(data: bytes, length: int) -> bytes:
    """Keep only the first ``length`` bytes (a torn write / short read)."""
    if length < 0:
        raise ConfigurationError(f"truncation length must be >= 0, got {length}")
    return data[:length]


def corrupt_magic(data: bytes) -> bytes:
    """Overwrite the 4-byte magic with an alien signature."""
    return b"XBLB" + data[4:]


def corrupt_version(data: bytes, version: int = 0x7FFF) -> bytes:
    """Rewrite the version field to an unsupported value."""
    return data[:4] + struct.pack("<H", version) + data[6:]


def _header_region(data: bytes) -> tuple[int, int]:
    """(start, end) byte offsets of the JSON header in a v2 blob."""
    if len(data) < _V2_PRELUDE:
        raise ConfigurationError("blob too short to locate its header")
    (header_length,) = struct.unpack_from("<I", data, 6)
    return _V2_PRELUDE, min(_V2_PRELUDE + header_length, len(data))


def corrupt_header_byte(data: bytes, offset: int = 0, bit: int = 0) -> bytes:
    """Flip one bit inside the JSON header region."""
    start, end = _header_region(data)
    if start + offset >= end:
        raise ConfigurationError(
            f"header offset {offset} outside header region [{start}, {end})"
        )
    return flip_bit(data, 8 * (start + offset) + bit)


def corrupt_payload_byte(data: bytes, offset: int = 0, bit: int = 0) -> bytes:
    """Flip one bit inside the payload region."""
    __, end = _header_region(data)
    if end + offset >= len(data):
        raise ConfigurationError(
            f"payload offset {offset} outside payload region [{end}, {len(data)})"
        )
    return flip_bit(data, 8 * (end + offset) + bit)


# -- array-level injectors --------------------------------------------------
def _poison(
    array: np.ndarray, value: float, fraction: float, seed: int
) -> np.ndarray:
    if not 0 < fraction <= 1:
        raise ConfigurationError(f"poison fraction must be in (0, 1], got {fraction}")
    out = np.array(array, dtype=np.result_type(array.dtype, np.float32), copy=True)
    flat = out.reshape(-1)
    count = max(1, int(round(fraction * flat.size)))
    rng = np.random.default_rng(seed)
    flat[rng.choice(flat.size, size=count, replace=False)] = value
    return out


def poison_nan(array: np.ndarray, fraction: float = 0.01, seed: int = 0) -> np.ndarray:
    """Return a copy with a deterministic subset of entries set to NaN."""
    return _poison(array, np.nan, fraction, seed)


def poison_inf(array: np.ndarray, fraction: float = 0.01, seed: int = 0) -> np.ndarray:
    """Return a copy with a deterministic subset of entries set to +Inf."""
    return _poison(array, np.inf, fraction, seed)


# -- file-level lifting -----------------------------------------------------
def corrupt_file(path: str, injector: Callable[[bytes], bytes]) -> None:
    """Apply a byte-level injector to a file in place (atomic rewrite)."""
    with open(path, "rb") as handle:
        data = handle.read()
    corrupted = injector(data)
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(corrupted)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


# -- corruption matrix ------------------------------------------------------
def blob_corruptions(
    data: bytes, truncation_step: int = 16
) -> Iterator[tuple[str, bytes]]:
    """Yield ``(name, corrupted)`` pairs covering every corruption class.

    The matrix spans: bad magic, unsupported version, a bit flip in the
    header, a bit flip in the payload, and truncation at every
    ``truncation_step``-byte boundary.  Tests iterate this to assert no
    corrupted variant ever decodes silently.
    """
    yield "bad-magic", corrupt_magic(data)
    yield "bad-version", corrupt_version(data)
    start, end = _header_region(data)
    yield "header-bitflip", corrupt_header_byte(data, offset=(end - start) // 2)
    if end < len(data):
        yield "payload-bitflip", corrupt_payload_byte(data, offset=(len(data) - end) // 2)
    for length in range(0, len(data), truncation_step):
        yield f"truncate-{length}", truncate(data, length)


# -- process/worker-level chaos ---------------------------------------------

#: environment variable the CLI/CI reads a chaos spec from
CHAOS_ENV_VAR = "REPRO_CHAOS"

_CHAOS_ACTIONS = ("kill", "hang", "slow", "raise", "corrupt", "disconnect")

#: default stall for ``hang`` rules — far past any sane task deadline
_HANG_SECONDS = 3600.0


class ChaosError(RuntimeError):
    """Failure raised by a ``raise`` chaos rule.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults must look like the arbitrary worker crashes they simulate,
    not like typed library failures.
    """


class ChaosPartition(ChaosError):
    """Signal raised by a ``disconnect`` chaos rule.

    Consumed by the distributed worker agent, which reacts by abruptly
    closing its coordinator connection — simulating a network partition
    rather than a compute fault.  Inside a process-pool worker (where
    there is no connection to sever) ``disconnect`` rules are inert.
    """


def corrupt_result(result, fraction: float = 0.05, seed: int = 0):
    """Deterministically poison the array content of a task result.

    Simulates a worker that computed garbage (bad RAM, a torn
    shared-memory read) but returned *something*: every ``np.ndarray``
    reachable one level deep — the object itself, elements of a
    list/tuple, or an ``outputs`` attribute (the
    :class:`~repro.core.pipeline.PipelineResult` convention) — is
    replaced by a NaN-poisoned copy.  The original object is never
    mutated, matching the copy semantics of the other array injectors.
    """
    if isinstance(result, np.ndarray):
        return poison_nan(result, fraction=fraction, seed=seed)
    if isinstance(result, (list, tuple)):
        items = [corrupt_result(item, fraction, seed) for item in result]
        return type(result)(items)
    if hasattr(result, "outputs") and isinstance(result.outputs, np.ndarray):
        corrupted = copy.copy(result)
        corrupted.outputs = poison_nan(result.outputs, fraction=fraction, seed=seed)
        return corrupted
    return result


@dataclass(frozen=True)
class ChaosRule:
    """One parsed chaos directive: what to do, to which task, how often.

    ``task=None`` matches every task; ``attempts=None`` matches every
    attempt, otherwise the rule fires only while ``attempt < attempts``
    (so the default ``attempts=1`` injects once and lets the retry
    succeed — the recoverable-fault shape).
    """

    action: str
    task: "int | None" = None
    attempts: "int | None" = 1
    param: float = 0.0

    def matches(self, task_id: int, attempt: int) -> bool:
        if self.task is not None and task_id != self.task:
            return False
        return self.attempts is None or attempt < self.attempts


class ChaosInjector:
    """Worker-side fault injector driven by a compact rule spec.

    Spec grammar (comma-separated rules)::

        action@task[:attempts][=param]

    * ``action`` — ``kill`` (SIGKILL own process), ``hang`` (sleep
      ``param`` seconds, default far past any deadline), ``slow``
      (sleep ``param`` seconds, default 0.1), ``raise`` (raise
      :class:`ChaosError`), ``corrupt`` (NaN-poison the task result),
      ``disconnect`` (sever the coordinator connection — distributed
      worker agents only, inert in a process pool);
    * ``task`` — a task index, or ``*`` for every task;
    * ``attempts`` — how many attempts the rule fires on: an integer
      (default 1 = first attempt only) or ``all`` (every attempt — the
      poison-chunk shape that exhausts a retry budget);
    * ``param`` — seconds for ``hang``/``slow``.

    Examples: ``kill@2`` (worker running task 2 dies once),
    ``hang@1=5`` (task 1 stalls 5 s on its first attempt),
    ``kill@3:all`` (task 3 is a poison pill), ``slow@*=0.2`` (every
    task dawdles).  The spec travels through :data:`CHAOS_ENV_VAR` so
    CI chaos jobs can inject faults through the unmodified CLI.
    """

    def __init__(self, rules: "list[ChaosRule] | None" = None) -> None:
        self.rules = list(rules or [])

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosInjector":
        rules = []
        for raw in spec.split(","):
            raw = raw.strip()
            if not raw:
                continue
            rules.append(cls._parse_rule(raw))
        return cls(rules)

    @classmethod
    def from_env(cls) -> "ChaosInjector | None":
        """Injector from :data:`CHAOS_ENV_VAR`, or ``None`` if unset."""
        spec = os.environ.get(CHAOS_ENV_VAR, "").strip()
        return cls.from_spec(spec) if spec else None

    @staticmethod
    def _parse_rule(raw: str) -> ChaosRule:
        if "@" not in raw:
            raise ConfigurationError(
                f"chaos rule {raw!r} must look like action@task[:attempts][=param]"
            )
        action, __, rest = raw.partition("@")
        action = action.strip().lower()
        if action not in _CHAOS_ACTIONS:
            raise ConfigurationError(
                f"unknown chaos action {action!r}; known: {', '.join(_CHAOS_ACTIONS)}"
            )
        rest, __, param_text = rest.partition("=")
        target, __, attempts_text = rest.partition(":")
        target = target.strip()
        try:
            task = None if target == "*" else int(target)
        except ValueError:
            raise ConfigurationError(
                f"chaos rule {raw!r}: task must be an index or '*'"
            ) from None
        attempts_text = attempts_text.strip().lower()
        if not attempts_text:
            attempts: "int | None" = 1
        elif attempts_text == "all":
            attempts = None
        else:
            try:
                attempts = int(attempts_text)
            except ValueError:
                raise ConfigurationError(
                    f"chaos rule {raw!r}: attempts must be an integer or 'all'"
                ) from None
            if attempts < 1:
                raise ConfigurationError(
                    f"chaos rule {raw!r}: attempts must be >= 1"
                )
        if param_text:
            try:
                param = float(param_text)
            except ValueError:
                raise ConfigurationError(
                    f"chaos rule {raw!r}: param must be a number"
                ) from None
        else:
            param = _HANG_SECONDS if action == "hang" else 0.1
        return ChaosRule(action=action, task=task, attempts=attempts, param=param)

    def _active(self, task_id: int, attempt: int) -> "list[ChaosRule]":
        return [rule for rule in self.rules if rule.matches(task_id, attempt)]

    def active_rules(self, task_id: int, attempt: int) -> "list[ChaosRule]":
        """Rules matching this (task, attempt) — for external consumers
        (the distributed worker agent fires ``kill``/``disconnect``
        itself, at the transport layer where they mean something)."""
        return self._active(task_id, attempt)

    def before_task(self, task_id: int, attempt: int) -> None:
        """Fire pre-execution rules (kill/hang/slow/raise) for this attempt.

        ``disconnect`` is deliberately skipped: severing a network
        connection is a transport-level fault the distributed worker
        agent injects via :meth:`active_rules`; a pool worker has
        nothing to disconnect from.
        """
        for rule in self._active(task_id, attempt):
            if rule.action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif rule.action in ("hang", "slow"):
                time.sleep(rule.param)
            elif rule.action == "raise":
                raise ChaosError(
                    f"injected failure for task {task_id} attempt {attempt}"
                )

    def after_task(self, task_id: int, attempt: int, result):
        """Apply result-corruption rules; returns the (possibly new) result."""
        for rule in self._active(task_id, attempt):
            if rule.action == "corrupt":
                result = corrupt_result(result, seed=task_id)
        return result


class FaultInjector:
    """Seeded convenience wrapper choosing corruption sites pseudo-randomly.

    Where the module-level functions take explicit offsets, the injector
    draws them from a deterministic :class:`numpy.random.Generator`, so a
    stress loop can hammer many distinct corruption sites while staying
    reproducible from a single seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def flip_random_bit(self, data: bytes) -> bytes:
        return flip_bit(data, int(self._rng.integers(0, 8 * len(data))))

    def truncate_randomly(self, data: bytes) -> bytes:
        return truncate(data, int(self._rng.integers(0, len(data))))

    def poison(self, array: np.ndarray, fraction: float = 0.01) -> np.ndarray:
        value = float(self._rng.choice([np.nan, np.inf, -np.inf]))
        return _poison(array, value, fraction, int(self._rng.integers(0, 2**31)))

    def corrupt_file_randomly(self, path: str) -> None:
        corrupt_file(path, self.flip_random_bit)
