"""Graceful-degradation policies for corrupted data.

When an integrity check fails, three reactions make sense in the
pipeline of Fig. 1, ordered from strictest to most forgiving:

* ``raise`` — propagate the typed error; the caller decides.
* ``recompress-from-source`` — re-run the lossy compressor on the
  registered source data under the original contract and retry.
* ``fallback-lossless`` — store/return the source data losslessly; the
  error contract is trivially honoured at the cost of compression ratio.

Both recovery policies require a *source* (the uncompressed data, or a
provider that can reproduce it) and are bounded by a retry budget so a
persistently failing medium still fails loudly rather than looping.
"""

from __future__ import annotations

from enum import Enum

from ..exceptions import ConfigurationError
from ..obs import get_metrics

__all__ = [
    "CorruptionPolicy",
    "record_audit_violation",
    "record_recovery",
    "record_retry",
    "resolve_policy",
]


class CorruptionPolicy(Enum):
    """What to do when stored or decoded data fails verification."""

    RAISE = "raise"
    RECOMPRESS = "recompress-from-source"
    FALLBACK_LOSSLESS = "fallback-lossless"

    @property
    def recovers(self) -> bool:
        """Whether this policy attempts recovery instead of raising."""
        return self is not CorruptionPolicy.RAISE


def record_retry(component: str) -> None:
    """Count one recovery retry (``retries_total{component=...}``).

    Emitted every time a degradation policy re-attempts a failed read —
    per attempt, not per incident, so a flaky medium shows up as a high
    retry-to-recovery ratio.
    """
    get_metrics().counter("retries_total", component=component).inc()


def record_recovery(policy: CorruptionPolicy, component: str) -> None:
    """Count one successful policy activation
    (``recoveries_total{policy=...,component=...}``)."""
    get_metrics().counter(
        "recoveries_total", policy=policy.value, component=component
    ).inc()


def record_audit_violation(component: str, count: int = 1) -> None:
    """Mirror audit bound violations into the resilience counters.

    A predicted-vs-observed violation means the theory the pipeline's
    tolerance allocation rests on did not cover reality for this run —
    operationally the same severity as a codec contract breach, so it
    lands in the same ``contract_violations_total`` family (``stage=
    "audit"``) that alerting already watches, in addition to the audit
    layer's own ``audit_violations_total``.
    """
    get_metrics().counter(
        "contract_violations_total", stage="audit", codec=component
    ).inc(count)


def resolve_policy(value: "CorruptionPolicy | str") -> CorruptionPolicy:
    """Coerce a policy enum or its string value, with a helpful error."""
    if isinstance(value, CorruptionPolicy):
        return value
    try:
        return CorruptionPolicy(value)
    except ValueError:
        known = ", ".join(repr(p.value) for p in CorruptionPolicy)
        raise ConfigurationError(
            f"unknown corruption policy {value!r}; known: {known}"
        ) from None
