"""Bounded retry with exponential backoff and deterministic jitter.

Every recoverable-failure path in this codebase follows the same
discipline: a bounded number of re-attempts, spaced out so a struggling
resource (a sick worker, a contended disk) is not hammered, with jitter
so a fleet of retriers does not thunder in lockstep.  PR 1 hard-coded
that discipline into the corruption policies; this module lifts it into
a reusable value object so the supervised worker pool, the checkpoint
layer and tests all share one schedule.

Jitter is *deterministic*: the delay for ``(seed, attempt)`` is a pure
function, so a failing run replays with exactly the same backoff
schedule — the same reproducibility contract as
:mod:`repro.resilience.inject`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

from ..exceptions import ConfigurationError

__all__ = ["RetryPolicy", "retry_call"]


@dataclass(frozen=True)
class RetryPolicy:
    """Schedule of bounded, exponentially backed-off retries.

    Parameters
    ----------
    max_retries:
        Re-attempts after the first failure (0 = fail immediately).
        ``max_retries=2`` means at most 3 attempts in total.
    base_delay:
        Delay before the first retry, in seconds.
    max_delay:
        Ceiling the exponential growth saturates at.
    jitter:
        Fractional jitter: the delay for attempt ``k`` is drawn
        uniformly from ``[d_k, d_k * (1 + jitter)]`` where
        ``d_k = min(max_delay, base_delay * 2**k)``.
    seed:
        Jitter stream seed; the same ``(seed, attempt)`` always yields
        the same delay.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        base = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if self.jitter == 0 or base == 0:
            return base
        fraction = random.Random(f"{self.seed}:{attempt}").random()
        return base * (1.0 + self.jitter * fraction)

    def delays(self) -> Iterator[float]:
        """The full schedule: one delay per allowed retry."""
        for attempt in range(self.max_retries):
            yield self.delay(attempt)


def retry_call(
    fn: Callable,
    policy: RetryPolicy,
    retry_on: tuple = (Exception,),
    on_retry: "Callable[[int, BaseException], None] | None" = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn()`` under ``policy``, re-raising the final failure.

    ``on_retry(attempt, exc)`` fires before each backoff sleep (metrics,
    logging); ``sleep`` is injectable so tests run instantly.
    """
    for attempt in range(policy.max_retries + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt))
    raise AssertionError("unreachable")  # pragma: no cover
