"""Supervised process-based worker pool for chunked execution.

The thread pool in :mod:`repro.perf.parallel` overlaps GIL-releasing
I/O, but CPU-bound numpy inference gains nothing from it (BENCH_pr4:
0.97x).  This module supplies the missing half: a pool of **forked
worker processes** — true multi-core parallelism, zero-copy inheritance
of the model/chunks at fork time — wrapped in the supervision a
long-running production run needs:

* **heartbeats & deadlines** — every worker beats a shared timestamp
  slot from a daemon thread; the supervisor kills and replaces workers
  whose task exceeded its deadline or whose heartbeat went stale;
* **death detection & respawn** — a worker that dies (OOM-kill, crash,
  injected SIGKILL) is detected by liveness polling, its in-flight task
  is rescheduled, and a fresh worker is forked in its place;
* **bounded retry with backoff** — failed tasks are re-queued under a
  :class:`~repro.resilience.retry.RetryPolicy` (exponential backoff +
  deterministic jitter), never hammered;
* **poison-task quarantine** — a task that keeps failing after its
  retry budget is quarantined instead of sinking the run; the caller
  decides how to degrade it (the pipeline falls back to lossless,
  serial execution via :mod:`repro.resilience.policy`);
* **circuit breaker** — too many worker deaths trip the breaker: the
  pool is abandoned and every remaining task runs serially in-process,
  so a sick host degrades to slow, never to failed.

Results are reported through an ``on_result`` callback *as tasks
complete* (the checkpoint journal hook) and collected into a
:class:`SupervisionReport`; per-worker **metrics deltas** (counters
incremented inside the forked children) ride back with each result and
are merged into the parent registry, so `pipeline_executions_total`
and friends stay accurate across process boundaries.

Ordering guarantee: task ids are list indices and the report exposes
results in id order, so supervised, threaded and serial execution
produce identical assembled outputs.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import ConfigurationError, ReproError
from ..obs import get_logger, get_metrics, get_tracer
from .retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "SupervisedPool",
    "SupervisionReport",
    "TaskOutcome",
    "fork_available",
]

_LOG = get_logger("supervisor")

#: supervisor poll granularity (seconds) — bounds fault-detection latency
_TICK = 0.05

#: worker join grace after the shutdown sentinel before a hard kill
_JOIN_GRACE = 1.0


def fork_available() -> bool:
    """Whether fork-based worker processes are supported on this host."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


@dataclass
class TaskOutcome:
    """Terminal state of one supervised task."""

    task_id: int
    result: object = None
    attempts: int = 1
    quarantined: bool = False
    error: "str | None" = None
    inline: bool = False
    #: wall seconds of the successful attempt as measured where it ran
    #: (inside the forked child for pool execution) — includes injected
    #: chaos delays, which is what straggler analysis wants to see
    seconds: "float | None" = None


@dataclass
class SupervisionReport:
    """What one :meth:`SupervisedPool.run` observed and produced."""

    outcomes: "dict[int, TaskOutcome]" = field(default_factory=dict)
    retries: int = 0
    respawns: int = 0
    quarantined: "list[int]" = field(default_factory=list)
    breaker_tripped: bool = False
    workers: int = 0
    executor: str = "process"

    def results(self) -> list:
        """Results in task-id order (``None`` for quarantined tasks)."""
        return [
            self.outcomes[task_id].result
            for task_id in sorted(self.outcomes)
        ]

    def summary(self) -> dict:
        return {
            "executor": self.executor,
            "workers": self.workers,
            "tasks": len(self.outcomes),
            "retries": self.retries,
            "respawns": self.respawns,
            "quarantined": list(self.quarantined),
            "breaker_tripped": self.breaker_tripped,
        }


class CircuitBreaker:
    """Trips after ``threshold`` pool-level faults (worker respawns,
    queue corruption); once tripped the pool stops being trusted."""

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self.faults = 0
        self.tripped = False
        self.reason = ""

    def record_fault(self, reason: str) -> bool:
        """Count one fault; returns True when this one tripped the breaker."""
        self.faults += 1
        if not self.tripped and self.faults >= self.threshold:
            self.tripped = True
            self.reason = reason
            return True
        return False

    def trip(self, reason: str) -> None:
        self.tripped = True
        self.reason = reason


class _Worker:
    """Parent-side handle: process, dedicated task queue, current task."""

    __slots__ = ("process", "queue", "current")

    def __init__(self, process, task_queue) -> None:
        self.process = process
        self.queue = task_queue
        # (task_id, attempt, dispatched_at) or None when idle
        self.current: "tuple[int, int, float] | None" = None


class SupervisedPool:
    """Fault-tolerant map over forked worker processes.

    Parameters
    ----------
    task_fn:
        Callable executed as ``task_fn(payload)`` inside a worker.
        Thanks to fork inheritance it may be a closure over arbitrarily
        heavy state (models, chunk arrays) — nothing is pickled except
        task payloads and results.
    workers:
        Pool size; ``<= 1`` (or a fork-less platform) runs every task
        inline in-process — supervision bookkeeping without processes.
    task_timeout:
        Per-task deadline in seconds measured from dispatch; expiry
        kills the worker and reschedules the task.  ``None`` disables.
    retry:
        Backoff/budget schedule for failed tasks (default
        ``RetryPolicy()``: 2 retries, 50 ms base, 2 s cap, 10% jitter).
    heartbeat_interval:
        Period of the worker heartbeat thread.
    stale_after:
        Kill a busy worker whose heartbeat is older than this many
        seconds (a frozen process — e.g. SIGSTOP — that is alive but
        not making progress).  ``None`` disables.
    breaker_threshold:
        Pool faults before the circuit breaker trips (default
        ``2 * workers + 1``).
    chaos:
        Optional :class:`~repro.resilience.inject.ChaosInjector`
        executed *inside workers* around each task (never inline in the
        parent) — the fault-injection seam the chaos tests and the CI
        chaos-smoke job use.
    validate:
        Optional ``validate(task_id, result)`` called in the parent on
        every completed result; raising treats the result as a task
        failure (corrupt-result detection).
    label:
        Metrics/trace label for this pool.
    """

    def __init__(
        self,
        task_fn: Callable,
        workers: "int | None" = None,
        *,
        task_timeout: "float | None" = None,
        retry: "RetryPolicy | None" = None,
        heartbeat_interval: float = 0.1,
        stale_after: "float | None" = 30.0,
        breaker_threshold: "int | None" = None,
        chaos=None,
        validate: "Callable | None" = None,
        label: str = "supervised",
    ) -> None:
        from ..perf.parallel import resolve_workers

        self.task_fn = task_fn
        self.workers = resolve_workers(workers)
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive, got {task_timeout}"
            )
        self.task_timeout = task_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.heartbeat_interval = float(heartbeat_interval)
        self.stale_after = stale_after
        self.breaker = CircuitBreaker(
            breaker_threshold
            if breaker_threshold is not None
            else 2 * self.workers + 1
        )
        self.chaos = chaos
        self.validate = validate
        self.label = label

    # -- public entry point ------------------------------------------------

    def run(self, payloads, on_result: "Callable | None" = None) -> SupervisionReport:
        """Execute every payload under supervision.

        ``on_result(task_id, result, outcome)`` fires in completion
        order for each successful task — the journaling hook.  Returns
        a :class:`SupervisionReport`; quarantined tasks appear in
        ``report.quarantined`` with an errored :class:`TaskOutcome`.
        """
        tasks = list(payloads)
        report = SupervisionReport(workers=self.workers)
        if not tasks:
            return report
        if self.workers <= 1 or not fork_available():
            report.executor = "inline"
            report.workers = 1
            self._run_inline(range(len(tasks)), tasks, report, on_result, {})
            return report
        tracer = get_tracer()
        with tracer.span(
            "supervisor.run", pool=self.label, tasks=len(tasks), workers=self.workers
        ) as span:
            self._run_supervised(tasks, report, on_result)
            span.set(**report.summary())
        return report

    # -- inline (serial / degraded) execution ------------------------------

    def _run_inline(self, task_ids, tasks, report, on_result, attempts_used) -> None:
        """Serial in-process execution with the same retry/quarantine
        semantics; used for ``workers <= 1`` and after a breaker trip.
        Chaos is never applied here — it models *worker* faults, and the
        parent must survive them."""
        metrics = get_metrics()
        for task_id in task_ids:
            attempt = attempts_used.get(task_id, 0)
            last_error = None
            result = None
            while True:
                started = time.perf_counter()
                try:
                    result = self.task_fn(tasks[task_id])
                    if self.validate is not None:
                        self.validate(task_id, result)
                    last_error = None
                except ReproError as exc:
                    last_error = f"{type(exc).__name__}: {exc}"
                except Exception as exc:
                    last_error = f"{type(exc).__name__}: {exc}"
                attempt += 1
                if last_error is None:
                    outcome = TaskOutcome(
                        task_id=task_id, result=result, attempts=attempt, inline=True,
                        seconds=time.perf_counter() - started,
                    )
                    report.outcomes[task_id] = outcome
                    if on_result is not None:
                        on_result(task_id, result, outcome)
                    break
                if attempt > self.retry.max_retries:
                    self._quarantine(report, task_id, attempt, last_error)
                    break
                report.retries += 1
                metrics.counter("chunk_retries_total", pool=self.label).inc()
                time.sleep(self.retry.delay(attempt - 1))

    # -- supervised process-pool execution ---------------------------------

    def _run_supervised(self, tasks, report, on_result) -> None:
        ctx = multiprocessing.get_context("fork")
        self._out_q = ctx.Queue()
        self._heartbeat = ctx.Array("d", self.workers, lock=False)
        self._in_queues = [ctx.Queue() for _ in range(self.workers)]
        workers: "dict[int, _Worker]" = {}
        for slot in range(self.workers):
            workers[slot] = self._spawn(ctx, slot)

        n = len(tasks)
        ready: list = [(0.0, task_id, 0) for task_id in range(n)]
        heapq.heapify(ready)
        failures: "dict[int, int]" = {}
        resolved: set = set()
        metrics = get_metrics()
        tracer = get_tracer()

        def fail_task(task_id: int, attempt: int, reason: str) -> None:
            failures[task_id] = failures.get(task_id, 0) + 1
            count = failures[task_id]
            if count > self.retry.max_retries:
                self._quarantine(report, task_id, count, reason)
                resolved.add(task_id)
                return
            delay = self.retry.delay(count - 1)
            heapq.heappush(ready, (time.monotonic() + delay, task_id, count))
            report.retries += 1
            metrics.counter("chunk_retries_total", pool=self.label).inc()
            _LOG.warning(
                "task failed; retrying with backoff",
                task=task_id, attempt=count, backoff_s=round(delay, 4), reason=reason,
            )

        def respawn(slot: int, reason: str) -> None:
            worker = workers[slot]
            self._kill(worker)
            report.respawns += 1
            metrics.counter("worker_restarts_total", pool=self.label).inc()
            if self.breaker.record_fault(reason):
                _LOG.error(
                    "circuit breaker tripped: pool unhealthy, degrading to "
                    "serial in-process execution",
                    faults=self.breaker.faults, reason=reason,
                )
                metrics.counter("circuit_breaker_trips_total", pool=self.label).inc()
                return
            if self.breaker.tripped:
                return  # pool already condemned; don't refill it
            _LOG.warning("respawning worker", slot=slot, reason=reason)
            workers[slot] = self._spawn(ctx, slot)

        try:
            # quarantined tasks also land in report.outcomes, so outcome
            # count alone is the terminal-task count
            while len(report.outcomes) < n and not self.breaker.tripped:
                now = time.monotonic()
                # dispatch ready tasks to idle live workers
                for slot, worker in workers.items():
                    if worker.current is not None or not worker.process.is_alive():
                        continue
                    while ready and ready[0][0] <= now:
                        __, task_id, attempt = heapq.heappop(ready)
                        if task_id in resolved or task_id in report.outcomes:
                            continue
                        worker.queue.put((task_id, attempt, tasks[task_id]))
                        worker.current = (task_id, attempt, now)
                        break

                # wait for worker traffic
                try:
                    message = self._out_q.get(timeout=_TICK)
                except queue_mod.Empty:
                    message = None
                except Exception as exc:
                    # a killed writer can tear a queued pickle; the pool's
                    # transport is no longer trustworthy
                    self.breaker.trip(f"result queue corrupted: {exc}")
                    _LOG.error("result queue corrupted; tripping breaker", error=str(exc))
                    break

                if message is not None:
                    kind = message[0]
                    if kind == "start":
                        pass  # dispatch time already anchors the deadline
                    elif kind == "done":
                        __, slot, task_id, result, delta, child_spans, seconds = message
                        worker = workers.get(slot)
                        if worker is not None and worker.current is not None and (
                            worker.current[0] == task_id
                        ):
                            worker.current = None
                        if task_id in report.outcomes or task_id in resolved:
                            continue  # late duplicate from a kill race
                        if delta and metrics.enabled:
                            metrics.merge_counter_deltas(delta)
                        attempts = failures.get(task_id, 0) + 1
                        try:
                            if self.validate is not None:
                                self.validate(task_id, result)
                        except Exception as exc:
                            fail_task(task_id, attempts, f"invalid result: {exc}")
                            continue
                        outcome = TaskOutcome(
                            task_id=task_id, result=result, attempts=attempts,
                            seconds=seconds,
                        )
                        report.outcomes[task_id] = outcome
                        with tracer.span(
                            "supervisor.task", pool=self.label, task=task_id,
                            attempts=attempts, worker=slot,
                        ) as task_span:
                            if seconds is not None:
                                task_span.set(task_seconds=seconds)
                            if on_result is not None:
                                on_result(task_id, result, outcome)
                        # adopt the child's spans under the task span so
                        # the fork boundary disappears from the trace
                        if child_spans and tracer.enabled:
                            tracer.merge_remote(child_spans, parent=task_span)
                    elif kind == "error":
                        __, slot, task_id, error_text = message
                        worker = workers.get(slot)
                        if worker is not None and worker.current is not None and (
                            worker.current[0] == task_id
                        ):
                            worker.current = None
                        if task_id not in report.outcomes and task_id not in resolved:
                            fail_task(
                                task_id, failures.get(task_id, 0) + 1, error_text
                            )

                # liveness / deadline / heartbeat sweep
                now = time.monotonic()
                for slot in list(workers):
                    worker = workers[slot]
                    current = worker.current
                    if not worker.process.is_alive():
                        worker.current = None
                        if current is not None:
                            fail_task(current[0], current[1] + 1, "worker died")
                        respawn(slot, "worker death")
                    elif current is not None and self.task_timeout is not None and (
                        now - current[2] > self.task_timeout
                    ):
                        worker.current = None
                        fail_task(
                            current[0],
                            current[1] + 1,
                            f"deadline expired after {self.task_timeout}s",
                        )
                        respawn(slot, "task deadline expired")
                    elif current is not None and self.stale_after is not None and (
                        now - self._heartbeat[slot] > self.stale_after
                    ):
                        worker.current = None
                        fail_task(current[0], current[1] + 1, "heartbeat went stale")
                        respawn(slot, "stale heartbeat")
        finally:
            in_flight = [w.current[0] for w in workers.values() if w.current]
            self._shutdown(workers)

        if self.breaker.tripped:
            report.breaker_tripped = True
            remaining = [
                task_id
                for task_id in range(n)
                if task_id not in report.outcomes
                and task_id not in set(report.quarantined)
            ]
            _LOG.warning(
                "executing remaining tasks serially in-process",
                remaining=len(remaining), in_flight=len(in_flight),
            )
            self._run_inline(remaining, tasks, report, on_result, dict(failures))

    # -- helpers -----------------------------------------------------------

    def _quarantine(self, report, task_id: int, attempts: int, reason: str) -> None:
        outcome = TaskOutcome(
            task_id=task_id, attempts=attempts, quarantined=True, error=reason
        )
        report.outcomes[task_id] = outcome
        report.quarantined.append(task_id)
        get_metrics().gauge("quarantined_chunks", pool=self.label).inc()
        _LOG.error(
            "task quarantined after exhausting its retry budget",
            task=task_id, attempts=attempts, reason=reason,
        )

    def _spawn(self, ctx, slot: int) -> _Worker:
        self._heartbeat[slot] = time.monotonic()
        process = ctx.Process(
            target=self._worker_main,
            args=(slot,),
            name=f"{self.label}-{slot}",
            daemon=True,
        )
        process.start()
        return _Worker(process, self._in_queues[slot])

    def _kill(self, worker: _Worker) -> None:
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=_JOIN_GRACE)

    def _shutdown(self, workers: "dict[int, _Worker]") -> None:
        for worker in workers.values():
            if worker.process.is_alive():
                try:
                    worker.queue.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + _JOIN_GRACE
        for worker in workers.values():
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=_JOIN_GRACE)
        for q in [*self._in_queues, self._out_q]:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass

    # -- worker side -------------------------------------------------------

    def _worker_main(self, slot: int) -> None:  # pragma: no cover - forked child
        """Forked worker loop: beat, take task, run, report, repeat."""
        from ..obs import get_auditor, set_auditor, set_tracer
        from ..obs.trace import Tracer

        # The child inherits the parent's live observability singletons.
        # The inherited tracer holds parent-owned spans and a shared lock,
        # so it is replaced: with tracing live the child gets its *own*
        # tracer carrying the inherited trace context (the parent's
        # ``supervisor.run`` span is still on this thread's stack, so
        # ``inject()`` anchors there), and its finished spans ship back
        # with each result for ``merge_remote`` to adopt.  A
        # registry-backed auditor would race the parent on run-id
        # assignment — detach it; metrics stay live so counter deltas
        # can be measured and shipped back with each result.
        parent_tracer = get_tracer()
        child_tracer = None
        if parent_tracer.enabled:
            child_tracer = Tracer(remote_context=parent_tracer.inject())
        set_tracer(child_tracer)
        auditor = get_auditor()
        if auditor.enabled:
            set_auditor(auditor.detached())

        in_q = self._in_queues[slot]
        out_q = self._out_q
        heartbeat = self._heartbeat
        stop = threading.Event()

        def beat() -> None:
            while not stop.is_set():
                heartbeat[slot] = time.monotonic()
                stop.wait(self.heartbeat_interval)

        threading.Thread(target=beat, daemon=True, name="heartbeat").start()

        metrics = get_metrics()
        baseline = metrics.counter_snapshot() if metrics.enabled else {}
        span_cursor = 0
        while True:
            message = in_q.get()
            if message is None:
                break
            task_id, attempt, payload = message
            out_q.put(("start", slot, task_id))
            started = time.perf_counter()
            try:
                if self.chaos is not None:
                    self.chaos.before_task(task_id, attempt)
                result = self.task_fn(payload)
                if self.chaos is not None:
                    result = self.chaos.after_task(task_id, attempt, result)
                if metrics.enabled:
                    current = metrics.counter_snapshot()
                    delta = metrics.counter_delta(current, baseline)
                    baseline = current
                else:
                    delta = {}
                if child_tracer is not None:
                    spans, span_cursor = child_tracer.dicts_since(span_cursor)
                else:
                    spans = []
                seconds = time.perf_counter() - started
                out_q.put(("done", slot, task_id, result, delta, spans, seconds))
            except BaseException as exc:
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                try:
                    out_q.put(("error", slot, task_id, detail))
                except Exception:
                    os._exit(1)
        stop.set()
