"""repro — error propagation estimation for neural-network inference on
reduced scientific data.

A from-scratch reproduction of *"Understanding and Estimating Error
Propagation in Neural Networks for Scientific Data Analysis"*
(ICDE 2025): theoretical QoI error bounds when network inputs pass
through error-bounded lossy compression (SZ/ZFP/MGARD-like codecs) and
weights through post-training quantization (TF32/FP16/BF16/INT8), plus a
planner that allocates a user tolerance across both to maximize inference
throughput.

Quick start::

    from repro import load_workload, TolerancePlanner, InferencePipeline
    from repro.compress import SZCompressor

    wl = load_workload("h2combustion")
    plan = TolerancePlanner(wl.analyzer).plan(qoi_tolerance=1e-3)
    pipe = InferencePipeline(wl.model, SZCompressor(), plan)
    result = pipe.execute(wl.dataset.fields)
    assert result.qoi_error("linf", relative=False) <= 1e-3
"""

from . import (
    compress,
    core,
    datasets,
    distrib,
    io,
    models,
    nn,
    obs,
    perf,
    physics,
    quant,
    resilience,
)
from .core import (
    ErrorFlowAnalyzer,
    InferencePipeline,
    InferencePlan,
    PipelineResult,
    TolerancePlanner,
    probe_sensitivity,
)
from .exceptions import (
    CompressionError,
    ConfigurationError,
    ContractViolation,
    IntegrityError,
    PlanningError,
    QuantizationError,
    ReproError,
    ShapeError,
    ToleranceError,
    TrainingError,
)
from .resilience import CorruptionPolicy
from .workloads import VARIANTS, WORKLOAD_NAMES, TrainedWorkload, load_workload

__version__ = "1.0.0"

__all__ = [
    "CompressionError",
    "ConfigurationError",
    "ContractViolation",
    "CorruptionPolicy",
    "ErrorFlowAnalyzer",
    "IntegrityError",
    "InferencePipeline",
    "InferencePlan",
    "PipelineResult",
    "PlanningError",
    "QuantizationError",
    "ReproError",
    "ShapeError",
    "ToleranceError",
    "TolerancePlanner",
    "TrainedWorkload",
    "TrainingError",
    "VARIANTS",
    "WORKLOAD_NAMES",
    "__version__",
    "compress",
    "core",
    "datasets",
    "distrib",
    "io",
    "load_workload",
    "models",
    "nn",
    "obs",
    "perf",
    "physics",
    "probe_sensitivity",
    "quant",
    "resilience",
]
