"""In-situ combustion analysis: sweeping codecs, formats and tolerances.

Mirrors the paper's hydrogen-combustion scenario (Section IV): a DNS-like
snapshot of 9 species mass fractions is stored compressed; a surrogate
network computes reaction rates from the reconstructed fields while its
weights live in a reduced numeric format.  The script prints, for every
codec and a sweep of QoI tolerances, the selected format, achieved error,
compression ratio and modeled end-to-end throughput — the data behind the
paper's Figs. 10-15.

Run:  python examples/combustion_pipeline.py
"""

import numpy as np

from repro import InferencePipeline, TolerancePlanner, load_workload
from repro.compress import MGARDCompressor, SZCompressor, ZFPCompressor
from repro.models import model_flops
from repro.perf import ExecutionModel, IOModel, RTX3080TI
from repro.quant import materialize

CODECS = {"sz": SZCompressor(), "zfp": ZFPCompressor(), "mgard": MGARDCompressor()}
TOLERANCES = np.logspace(-4, -1, 6)


def main() -> None:
    workload = load_workload("h2combustion")
    planner = TolerancePlanner(workload.analyzer)
    io_model = IOModel()
    exec_model = ExecutionModel(RTX3080TI)
    flops = model_flops(materialize(workload.model), (9,))

    baseline = min(io_model.baseline_gbps, exec_model.data_throughput_gbps(flops, 36, "fp32"))
    print(f"uncompressed FP32 baseline: {baseline:.2f} GB/s\n")
    print(f"{'codec':7s} {'qoi tol':>9s} {'format':>6s} {'achieved':>10s} "
          f"{'ratio':>6s} {'total GB/s':>10s} {'speedup':>8s}")

    for codec_name, codec in CODECS.items():
        for tolerance in TOLERANCES:
            plan = planner.plan(float(tolerance), norm="linf", quant_fraction=0.5)
            pipeline = InferencePipeline(workload.model, codec, plan)
            result = pipeline.execute(workload.dataset.fields)
            achieved = result.qoi_error("linf", relative=False)
            io_gbps = io_model.throughput_gbps(codec_name, result.compression_ratio)
            exec_gbps = exec_model.data_throughput_gbps(flops, 36, plan.fmt.name)
            total = min(io_gbps, exec_gbps)
            print(f"{codec_name:7s} {tolerance:9.1e} {plan.fmt.name:>6s} "
                  f"{achieved:10.2e} {result.compression_ratio:6.2f} "
                  f"{total:10.2f} {total / baseline:7.2f}x")
            assert achieved <= tolerance
        print()

    print("every run honoured its QoI tolerance")


if __name__ == "__main__":
    main()
