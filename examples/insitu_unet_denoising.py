"""In-situ denoising with a U-Net over an error-bounded store.

A Section-VI-flavoured end-to-end scenario: simulation snapshots are
written to an error-bounded :class:`~repro.io.DatasetStore`; an analysis
stage later loads them and runs a spectrally-normalized U-Net denoiser
whose weights are quantized.  The error-flow analyzer certifies, before
any of that runs, that the stored-data tolerance plus the weight format
keeps the denoised fields within budget.

Run:  python examples/insitu_unet_denoising.py
"""


import tempfile

import numpy as np

from repro.core import ErrorFlowAnalyzer
from repro.io import DatasetStore
from repro.models import unet
from repro.nn import Adam, MSELoss, Trainer
from repro.quant import FP16, materialize, quantize_model

# Budget on the denoised field, per sample, in L2 over the 24x24 grid —
# i.e. about 0.3/24 ~ 1e-2 per pixel on fields of order 1.
QOI_TOLERANCE = 3e-1
GRID = 24


def make_snapshots(n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    grid = np.linspace(0, 6, GRID)
    clean = np.stack(
        [
            np.sin(grid + phase)[None, :] * np.cos(0.7 * grid)[:, None]
            for phase in rng.uniform(0, 3, n)
        ]
    )[:, None].astype(np.float32)
    noisy = clean + 0.1 * rng.standard_normal(clean.shape).astype(np.float32)
    return clean, noisy


def main() -> None:
    rng = np.random.default_rng(11)

    # --- train the denoiser -------------------------------------------------
    clean, noisy = make_snapshots(64, rng)
    model = unet(in_channels=1, out_channels=1, base_width=8, depth=2, rng=rng)
    trainer = Trainer(
        model, MSELoss(), Adam(model.parameters(), lr=2e-3), spectral_weight=1e-4
    )
    history = trainer.fit(noisy, clean, epochs=25, batch_size=8, rng=rng)
    model.eval()
    print(f"denoiser trained: loss {history.train_loss[0]:.3f} -> "
          f"{history.train_loss[-1]:.3f}")

    # --- certify the pipeline before running it ------------------------------
    analyzer = ErrorFlowAnalyzer(model, n_input=GRID * GRID)
    analyzer.calibrate(noisy[:16])
    quant_bound = analyzer.quantization_bound(FP16)
    input_budget_l2 = analyzer.invert_compression_tolerance(QOI_TOLERANCE, FP16)
    storage_tolerance = input_budget_l2 / GRID  # pointwise, sqrt(n0)=GRID
    print(f"FP16 weight bound: {quant_bound:.3e}")
    print(f"certified storage tolerance: {storage_tolerance:.3e} (pointwise)")

    # --- the in-situ side: write snapshots through the store -----------------
    __, fresh_noisy = make_snapshots(8, rng)
    with tempfile.TemporaryDirectory() as directory:
        store = DatasetStore(directory)
        for index, snapshot in enumerate(fresh_noisy):
            store.put(f"snap{index:03d}", snapshot, tolerance=storage_tolerance)
        total = sum(store.stored_bytes(name) for name in store.names())
        raw = fresh_noisy.nbytes
        print(f"stored {len(store.names())} snapshots: {raw} B -> {total} B "
              f"({raw / total:.2f}x)")

        # --- the analysis side: load, denoise with quantized weights ----------
        quantized = quantize_model(model, FP16)
        reference = materialize(model)(fresh_noisy)
        worst = 0.0
        for index, name in enumerate(store.names()):
            loaded = store.get(name)[None]
            output = quantized(loaded)
            error = float(np.linalg.norm(output - reference[index : index + 1]))
            worst = max(worst, error)
        print(f"worst denoised-field L2 error: {worst:.3e} <= {QOI_TOLERANCE:.1e}: "
              f"{worst <= QOI_TOLERANCE}")
        assert worst <= QOI_TOLERANCE
    print("in-situ U-Net workflow OK")



if __name__ == "__main__":
    main()
