"""Quickstart: error-bounded inference in five steps.

1. load a trained scientific workload (hydrogen combustion surrogate);
2. ask the error-flow analyzer what a format / input-error choice costs;
3. let the planner split a QoI tolerance between quantization and
   compression;
4. run the full pipeline (compress -> decompress -> quantized inference);
5. verify the achieved QoI error honours the tolerance.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import InferencePipeline, TolerancePlanner, load_workload
from repro.compress import SZCompressor
from repro.quant import FP16, INT8

TOLERANCE = 1e-2  # user budget for the max absolute QoI error


def main() -> None:
    # --- 1. a trained surrogate (9 mass fractions -> 9 reaction rates) ----
    workload = load_workload("h2combustion")
    analyzer = workload.analyzer
    print(f"workload: {workload.name} ({workload.variant}), "
          f"train loss {workload.final_train_loss:.2e}")
    print(f"layer spectral norms: {[round(s, 3) for s in analyzer.layer_sigmas()]}")

    # --- 2. what do reduction choices cost, before touching the model? ----
    print(f"\nEq. (5) gain (input-error amplification): {analyzer.gain():.2f}")
    for fmt in (FP16, INT8):
        print(f"Eq. (3) quantization-only bound for {fmt.name}: "
              f"{analyzer.quantization_bound(fmt):.3e}")

    # --- 3. allocate the tolerance -----------------------------------------
    planner = TolerancePlanner(analyzer)
    plan = planner.plan(TOLERANCE, norm="linf", quant_fraction=0.5)
    print(f"\nplan: {plan.describe()}")

    # --- 4. run the pipeline on the stored fields ---------------------------
    pipeline = InferencePipeline(workload.model, SZCompressor(), plan)
    result = pipeline.execute(workload.dataset.fields)
    print(f"compression ratio: {result.compression_ratio:.2f}x")
    print(f"stage timings: compress {result.compress_seconds * 1e3:.1f} ms, "
          f"decompress {result.decompress_seconds * 1e3:.1f} ms, "
          f"inference {result.inference_seconds * 1e3:.1f} ms")

    # --- 5. the contract ------------------------------------------------------
    achieved = result.qoi_error("linf", relative=False)
    print(f"\nachieved QoI error {achieved:.3e} <= tolerance {TOLERANCE:.1e}: "
          f"{achieved <= TOLERANCE}")
    assert achieved <= TOLERANCE
    print("quickstart OK")


if __name__ == "__main__":
    np.seterr(all="raise", under="ignore")
    main()
