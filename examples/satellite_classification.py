"""Satellite imagery: keeping classification stable under reduction.

Mirrors the paper's EuroSAT scenario (Section IV-A.3): a spectrally
normalized ResNet18 classifies 13-band multispectral tiles, with the
*final feature map* as the quantity of interest.  The script quantizes
the feature extractor into each numeric format, compresses the test
tiles, and reports (a) the feature-map error against its Eq. (3) bound
and (b) how many predicted labels flip — connecting the error theory to
the downstream decision quality a scientist actually cares about.

Run:  python examples/satellite_classification.py
"""

import numpy as np

from repro import load_workload
from repro.compress import ErrorBoundMode, SZCompressor
from repro.quant import BF16, FP16, INT8, TF32, materialize, quantize_model

INPUT_TOLERANCE = 1e-3  # pointwise tolerance on the normalized tiles


def main() -> None:
    workload = load_workload("eurosat")
    dataset = workload.dataset
    full_model = workload.model
    features = workload.qoi_model()
    analyzer = workload.qoi_analyzer()
    full_model.eval()

    tiles = dataset.fields  # (N, 13, H, W) normalized test tiles
    reference_logits = full_model(tiles)
    reference_labels = reference_logits.argmax(axis=1)
    accuracy = float((reference_labels == dataset.test_targets).mean())
    print(f"FP32 reference accuracy on {len(tiles)} tiles: {accuracy:.2f}")

    # --- compress the tiles once --------------------------------------------
    codec = SZCompressor()
    blob = codec.compress(tiles, INPUT_TOLERANCE, ErrorBoundMode.ABS)
    reconstructed = codec.decompress(blob)
    print(f"SZ ratio at tol {INPUT_TOLERANCE:.0e}: {blob.compression_ratio:.2f}x")

    reference_features = materialize(features)(tiles)
    scale = float(np.abs(reference_features).max())

    print(f"\n{'format':>6s} {'feature err':>12s} {'Eq.(3) bound':>13s} "
          f"{'labels flipped':>14s}")
    for fmt in (TF32, FP16, BF16, INT8):
        quantized_features = quantize_model(features, fmt)
        outputs = quantized_features(reconstructed)
        achieved = float(np.abs(outputs - reference_features).max()) / scale

        input_linf = float(np.abs(reconstructed - tiles).max())
        bound = analyzer.combined_bound_linf(input_linf, fmt) / scale

        quantized_full = quantize_model(full_model, fmt)
        labels = quantized_full(reconstructed).argmax(axis=1)
        flipped = int((labels != reference_labels).sum())
        print(f"{fmt.name:>6s} {achieved:12.3e} {bound:13.3e} {flipped:14d}")
        assert achieved <= bound, "bound violated"

    print("\nfeature-map errors stayed inside the Eq. (3) bound for every format")


if __name__ == "__main__":
    main()
