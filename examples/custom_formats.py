"""Designing better 16-bit formats: more mantissa bits for inference.

The paper's conclusion argues that inference-oriented low-precision
formats should spend bits on the *mantissa*, not the exponent ("formats
with increased mantissa bits can offer improved efficiency while
minimizing accuracy loss").  This script builds hypothetical 16-bit
layouts across the exponent/mantissa trade-off and evaluates their
Eq. (3) bounds and achieved errors on the trained surrogates — the
experiment the paper proposes as future hardware guidance.

Run:  python examples/custom_formats.py
"""

import numpy as np

from repro import load_workload
from repro.quant import FloatFormat, materialize, quantize_model

# All 16-bit: trade exponent bits for mantissa bits.
CANDIDATES = [
    FloatFormat(name="e8m7 (bf16)", storage_bits=16, exponent_bits=8, mantissa_bits=7),
    FloatFormat(name="e6m9", storage_bits=16, exponent_bits=6, mantissa_bits=9),
    FloatFormat(name="e5m10 (fp16)", storage_bits=16, exponent_bits=5, mantissa_bits=10),
    FloatFormat(name="e4m11", storage_bits=16, exponent_bits=4, mantissa_bits=11),
    FloatFormat(name="e3m12", storage_bits=16, exponent_bits=3, mantissa_bits=12),
]


def main() -> None:
    for name in ("h2combustion", "borghesi"):
        workload = load_workload(name)
        model = workload.qoi_model()
        analyzer = workload.qoi_analyzer()
        samples = workload.dataset.test_inputs[:256]
        reference = materialize(model)(samples)
        scale = float(np.abs(reference).max())

        print(f"\n{name}: 16-bit exponent/mantissa trade-off")
        print(f"{'format':>14s} {'bound':>10s} {'achieved':>10s}")
        results = {}
        for fmt in CANDIDATES:
            quantized = quantize_model(model, fmt)
            achieved = float(np.abs(quantized(samples) - reference).max()) / scale
            bound = analyzer.quantization_bound(fmt) / scale
            results[fmt.name] = (bound, achieved)
            print(f"{fmt.name:>14s} {bound:10.2e} {achieved:10.2e}")
            assert achieved <= bound

        # More mantissa bits -> tighter bounds, *while* the exponent range
        # still covers the trained weights: bf16 -> e6m9 -> fp16 -> e4m11
        # halves the bound at each step.
        bounds = [results[fmt.name][0] for fmt in CANDIDATES]
        assert all(b1 >= b2 for b1, b2 in zip(bounds[:4], bounds[1:4])), bounds
        # ...but e3m12's two-bit exponent window clamps small weights into
        # the subnormal grid, and the bound turns back up: mantissa bits
        # only help while the dynamic range suffices.
        if bounds[4] > bounds[3]:
            print("=> e3m12 hits the exponent floor: extra mantissa bits "
                  "stop paying once the dynamic range is too narrow")
        print("=> every extra mantissa bit halves the bound while the "
              "exponent range covers the weights (the paper's conclusion, "
              "quantified)")


if __name__ == "__main__":
    main()
