"""Borghesi-flame dissipation profiling: a sensitivity-aware workflow.

The paper observes (Section IV-B.2) that the dissipation-rate surrogate
amplifies input perturbations ~10x more than the combustion surrogate.
This script shows the workflow the paper recommends: *measure* the
sensitivity first, then pick compression tolerances accordingly, and
confirm with the error-flow bound that the resulting pipeline stays
inside the QoI budget.

Run:  python examples/dissipation_profiling.py
"""

import numpy as np

from repro import InferencePipeline, TolerancePlanner, load_workload, probe_sensitivity
from repro.compress import MGARDCompressor

QOI_TOLERANCE = 5e-3


def main() -> None:
    borghesi = load_workload("borghesi")
    h2 = load_workload("h2combustion")
    rng = np.random.default_rng(0)

    # --- 1. empirical sensitivity, the paper's Section IV-B.2 comparison ----
    print("input perturbation 1e-3 ->")
    for workload in (h2, borghesi):
        report = probe_sensitivity(
            workload.model, workload.dataset.test_inputs[:300], 1e-3, rng=rng
        )
        print(f"  {workload.name:14s} {report.describe()}")
    bf = probe_sensitivity(borghesi.model, borghesi.dataset.test_inputs[:300], 1e-3, rng=rng)
    h2r = probe_sensitivity(h2.model, h2.dataset.test_inputs[:300], 1e-3, rng=rng)
    print(f"BorghesiFlame amplifies {bf.amplification / h2r.amplification:.1f}x more "
          "than H2Combustion (paper reports ~10x)\n")

    # --- 2. the bound agrees: compare Eq. (5) gains --------------------------
    print(f"Eq. (5) gains: h2 {h2.analyzer.gain():.1f}, "
          f"borghesi {borghesi.analyzer.gain():.1f}")

    # --- 3. plan accordingly: the planner hands Borghesi a tighter input tol --
    plans = {
        workload.name: TolerancePlanner(workload.analyzer).plan(
            QOI_TOLERANCE, norm="linf", quant_fraction=0.3
        )
        for workload in (h2, borghesi)
    }
    for name, plan in plans.items():
        print(f"  {name:14s} -> {plan.describe()}")
    assert plans["borghesi"].input_tolerance < plans["h2combustion"].input_tolerance

    # --- 4. execute and verify -------------------------------------------------
    pipeline = InferencePipeline(borghesi.model, MGARDCompressor(), plans["borghesi"])
    result = pipeline.execute(borghesi.dataset.fields)
    achieved = result.qoi_error("linf", relative=False)
    print(f"\nborghesi pipeline: ratio {result.compression_ratio:.2f}x, "
          f"achieved {achieved:.3e} <= {QOI_TOLERANCE:.0e}")
    assert achieved <= QOI_TOLERANCE
    print("dissipation workflow OK")


if __name__ == "__main__":
    main()
