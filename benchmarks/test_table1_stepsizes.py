"""Table I: average quantization step size q for common numeric formats.

Prints q(W) per layer of each trained workload under TF32/FP16/BF16/INT8
and checks the structural facts Table I encodes: TF32 and FP16 agree
whenever weights stay in the FP16 normal range, and BF16's step is
exactly ``2^3`` times coarser (10 vs 7 mantissa bits).
"""

import numpy as np

from conftest import print_table, run_once
from repro.quant import BF16, FP16, INT8, TF32, average_step_size

_FORMATS = (TF32, FP16, BF16, INT8)


def test_table1_step_sizes(benchmark, workloads):
    def compute():
        rows = []
        for name, workload in workloads.items():
            for index, spec in enumerate(workload.analyzer.spec.linear_specs()):
                row = [name, index]
                for fmt in _FORMATS:
                    row.append(average_step_size(spec.weights, fmt))
                rows.append(row)
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        "Table I: average step size q(W) per layer",
        ["workload", "layer", "tf32", "fp16", "bf16", "int8"],
        rows,
    )
    for row in rows:
        tf32_q, fp16_q, bf16_q = row[2], row[3], row[4]
        # trained weights sit far above 2^-14: TF32 == FP16 exactly
        assert np.isclose(tf32_q, fp16_q, rtol=1e-12)
        # 3 fewer mantissa bits -> exactly 8x coarser steps
        assert np.isclose(bf16_q, fp16_q * 8.0, rtol=1e-12)
        assert all(q > 0 for q in row[2:])
