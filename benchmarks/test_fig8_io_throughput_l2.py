"""Fig. 8: I/O throughput vs user QoI tolerance, L2 norm.

Same sweep as Fig. 7 under an L2 tolerance.  ZFP is absent: it does not
support an L2 error bound (paper's caption), which the framework enforces.
"""

import pytest

from conftest import print_table, run_once
from repro.compress import ErrorBoundMode, ZFPCompressor
from repro.exceptions import ToleranceError

from test_fig7_io_throughput_linf import _QOI_TOLERANCES, io_throughput_sweep

_NORM = "l2"


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_fig8_io_throughput(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    rows = run_once(
        benchmark, lambda: io_throughput_sweep(workload, _NORM, ErrorBoundMode.L2_ABS)
    )
    print_table(
        f"Fig. 8 ({workload_name}): I/O throughput vs QoI tolerance (L2, baseline 2.8 GB/s)",
        ["qoi tol", "codec", "ratio", "GB/s", "speedup"],
        rows,
    )
    codecs_present = {r[1] for r in rows}
    assert codecs_present == {"sz", "mgard"}, "ZFP must be absent from the L2 figure"
    for codec_name in codecs_present:
        series = [r for r in rows if r[1] == codec_name]
        assert series[-1][3] >= series[0][3]
    loosest = [r[3] for r in rows if r[0] == _QOI_TOLERANCES[-1]]
    assert max(loosest) > 2.8


def test_fig8_zfp_has_no_l2_mode(benchmark, workloads):
    """The framework enforces the paper's 'ZFP does not support an L2
    norm tolerance' restriction."""
    fields = workloads["h2combustion"].dataset.fields

    def attempt():
        try:
            ZFPCompressor().compress(fields, 1e-3, ErrorBoundMode.L2_ABS)
        except ToleranceError:
            return True
        return False

    assert run_once(benchmark, attempt)
