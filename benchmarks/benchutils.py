"""Shared row schema and timing helpers for the ``bench_*.py`` scripts.

Every benchmark in this directory emits the same JSON row shape::

    {"path": ..., "config": {...}, "seconds": best,
     "reps_s": [per-rep wall times], "throughput_*": ...}

``seconds`` stays the historical best-of-reps number (robust to
scheduler noise, what the per-PR gates assert), while ``reps_s`` keeps
the individual rep times: :mod:`repro.perf.history` computes its
median/MAD regression statistics from them, so a recorded run carries
its own noise floor instead of a single point estimate.

``config`` holds the *identity* of what was measured plus derived
outcomes (speedups, overheads).  The history layer strips the derived
keys before fingerprinting — see ``_VOLATILE_PREFIXES`` there — so only
add new measured-outcome keys under those prefixes.
"""

from __future__ import annotations

import json
import os
import time


def best_of(fn, reps: int) -> "tuple[float, list[float]]":
    """``(best wall time, all rep wall times)`` over ``reps`` calls.

    Best-of is robust to scheduler noise for gating; the full rep list
    feeds the bench history's median/MAD regression detector.
    """
    times: list[float] = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times), times


def make_row(
    path: str,
    config: dict,
    seconds: float,
    reps_s: "list[float] | None" = None,
    **throughputs,
) -> dict:
    """One unified bench row; throughput fields pass through by name
    (``throughput_mb_s=...``, ``throughput_samples_s=...``)."""
    row = {"path": path, "config": dict(config), "seconds": float(seconds)}
    if reps_s:
        row["reps_s"] = [float(r) for r in reps_s]
    for field, value in throughputs.items():
        if not field.startswith("throughput"):
            raise ValueError(f"throughput field must start with 'throughput', got {field!r}")
        row[field] = value
    return row


def finalize_rows(rows: "list[dict]", quick: bool) -> "list[dict]":
    """Stamp host shape + quick mode onto every row's config (in place)."""
    for row in rows:
        row["config"]["cpu_count"] = os.cpu_count()
        row["config"]["quick"] = bool(quick)
    return rows


def write_rows(rows: "list[dict]", out: str) -> None:
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2)
        handle.write("\n")
    print(f"wrote {len(rows)} rows to {out}")
