"""Ablation: data-driven calibration of the quantization bound.

The paper's quantization term bounds hidden-signal norms with the
worst-case ``prod sigma~ * sqrt(n_0)``.  Calibrating with measured signal
norms (an extension this library adds) tightens the bound — most visibly
on the deep Borghesi MLP and the EuroSAT ResNet — while never undercutting
the achieved error.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from figutils import samples_from_fields
from repro.core import ErrorFlowAnalyzer
from repro.quant import BF16, FP16, INT8, TF32, materialize, quantize_model

_FORMATS = (TF32, FP16, BF16, INT8)


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi", "eurosat"])
def test_calibration_tightens_without_undercutting(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    model = workload.qoi_model()
    model.eval()
    samples = samples_from_fields(workload, workload.dataset.fields)
    if workload_name == "eurosat":
        samples = samples[:32]

    def compute():
        n_input = int(np.prod(workload.dataset.train_inputs.shape[1:]))
        paper = ErrorFlowAnalyzer(model, n_input=n_input)
        calibrated = ErrorFlowAnalyzer(model, n_input=n_input).calibrate(samples)
        reference = materialize(model)(samples).reshape(len(samples), -1)
        rows = []
        for fmt in _FORMATS:
            quantized = quantize_model(model, fmt)
            outputs = quantized(samples).reshape(len(samples), -1)
            achieved = float(np.linalg.norm(outputs - reference, axis=1).max())
            rows.append(
                [
                    fmt.name,
                    achieved,
                    calibrated.quantization_bound(fmt),
                    paper.quantization_bound(fmt),
                ]
            )
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        f"Ablation ({workload_name}): calibrated vs paper quantization bound",
        ["format", "achieved", "calibrated bound", "paper bound"],
        rows,
    )
    for fmt_name, achieved, calibrated_bound, paper_bound in rows:
        assert achieved <= calibrated_bound, f"{fmt_name}: calibration undercut"
        assert calibrated_bound <= paper_bound * (1 + 1e-9)
    # calibration must buy an improvement; deep networks gain the most
    # (the shallow H2 net nearly saturates the sqrt(n0) signal already)
    gains = [paper / max(cal, 1e-300) for __, __, cal, paper in rows]
    minimum_gain = 1.3 if workload_name != "h2combustion" else 1.05
    assert max(gains) > minimum_gain
