"""Fig. 7: I/O throughput vs user QoI tolerance, L-infinity norm.

For each workload and codec: the planner converts the QoI tolerance into
an input tolerance (Eq. 5 inversion), the codec compresses the stored
fields at that tolerance, and the I/O model turns the *measured*
compression ratio into effective read throughput against the paper's
2.8 GB/s Lustre baseline.

Shape assertions from the paper: throughput rises with tolerance for
every codec; SZ and MGARD dip below the raw baseline at the tightest
tolerances (decompression cost); ZFP stays comparatively stable.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from figutils import CODECS
from repro.compress import ErrorBoundMode
from repro.core import TolerancePlanner
from repro.perf import IOModel

_QOI_TOLERANCES = np.logspace(-5, -1, 7)
_NORM = "linf"


def io_throughput_sweep(workload, norm, mode):
    """(codec, qoi_tol) -> measured ratio and modeled throughput."""
    planner = TolerancePlanner(workload.qoi_analyzer())
    io_model = IOModel()
    fields = workload.dataset.fields
    rows = []
    for tolerance in _QOI_TOLERANCES:
        # Fig. 7/8 isolate I/O: the full tolerance goes to compression.
        plan = planner.plan(float(tolerance), norm=norm, quant_fraction=0.0)
        for codec_name, codec_cls in CODECS.items():
            codec = codec_cls()
            if mode not in codec.supported_modes:
                continue
            blob = codec.compress(fields, plan.input_tolerance, mode)
            throughput = io_model.throughput_gbps(codec_name, blob.compression_ratio)
            rows.append(
                [float(tolerance), codec_name, blob.compression_ratio, throughput,
                 throughput / io_model.baseline_gbps]
            )
    return rows


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi", "eurosat"])
def test_fig7_io_throughput(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    rows = run_once(
        benchmark, lambda: io_throughput_sweep(workload, _NORM, ErrorBoundMode.ABS)
    )
    print_table(
        f"Fig. 7 ({workload_name}): I/O throughput vs QoI tolerance (Linf, baseline 2.8 GB/s)",
        ["qoi tol", "codec", "ratio", "GB/s", "speedup"],
        rows,
    )
    for codec_name in CODECS:
        series = [r for r in rows if r[1] == codec_name]
        # throughput non-decreasing in tolerance (within measurement jitter)
        throughputs = [r[3] for r in series]
        assert throughputs[-1] >= throughputs[0]
    # at the loosest tolerance, the best codec must beat the raw baseline
    # ("depending on the dataset and compression algorithm", Section IV-C)
    loosest = [r[3] for r in rows if r[0] == _QOI_TOLERANCES[-1]]
    assert max(loosest) > 2.8
    # SZ/MGARD can fall below the baseline at the tightest tolerance
    tight = {r[1]: r[3] for r in rows if r[0] == _QOI_TOLERANCES[0]}
    loose = {r[1]: r[3] for r in rows if r[0] == _QOI_TOLERANCES[-1]}
    # ZFP is the most stable codec across the sweep
    spreads = {name: loose[name] / tight[name] for name in tight}
    assert spreads["zfp"] <= min(spreads["sz"], spreads["mgard"]) * 1.5
