"""Shared experiment drivers for the figure benchmarks."""

from __future__ import annotations

import numpy as np

from repro import TrainedWorkload, load_workload
from repro.compress import ErrorBoundMode, MGARDCompressor, SZCompressor, ZFPCompressor

CODECS = {
    "sz": SZCompressor,
    "zfp": ZFPCompressor,
    "mgard": MGARDCompressor,
}

N_BATCHES = 5


def samples_from_fields(workload: TrainedWorkload, fields: np.ndarray) -> np.ndarray:
    """Reshape stored fields into per-sample network inputs."""
    if workload.name == "eurosat":
        return fields.astype(np.float32)
    return fields.reshape(fields.shape[0], -1).T.astype(np.float32)


def batch_slices(n_samples: int, n_batches: int = N_BATCHES) -> list[slice]:
    """Split sample rows into independent evaluation batches."""
    edges = np.linspace(0, n_samples, n_batches + 1, dtype=int)
    return [slice(a, b) for a, b in zip(edges[:-1], edges[1:]) if b > a]


def reference_output_scales(workload: TrainedWorkload) -> tuple[np.ndarray, float, float]:
    """Full-precision QoI reference and its Linf / per-sample-L2 scales."""
    model = workload.qoi_model()
    model.eval()
    samples = samples_from_fields(workload, workload.dataset.fields)
    reference = model(samples)
    flat = reference.reshape(len(reference), -1)
    return reference, float(np.abs(flat).max()), float(np.linalg.norm(flat, axis=1).max())


def compression_error_sweep(
    workload: TrainedWorkload,
    input_tolerances: np.ndarray,
    norm: str,
) -> list[dict]:
    """Achieved QoI error distribution per codec and tolerance (Figs. 3/4).

    For each pointwise input tolerance, each codec compresses the stored
    fields once; QoI errors are evaluated over independent sample batches
    to obtain the distribution the paper plots.
    """
    model = workload.qoi_model()
    model.eval()
    fields = workload.dataset.fields
    samples_ref = samples_from_fields(workload, fields)
    reference, ref_linf, ref_l2 = reference_output_scales(workload)
    reference = reference.reshape(len(reference), -1)
    input_scale = float(np.abs(samples_ref).max())
    flat_ref = samples_ref.reshape(len(samples_ref), -1)
    input_scale_l2 = float(np.linalg.norm(flat_ref, axis=1).max())

    points = []
    for tolerance in input_tolerances:
        for codec_name, codec_cls in CODECS.items():
            codec = codec_cls()
            blob = codec.compress(fields, float(tolerance), ErrorBoundMode.ABS)
            reconstruction = codec.decompress(blob)
            samples_new = samples_from_fields(workload, reconstruction)
            outputs = model(samples_new).reshape(len(reference), -1)
            delta_in = (samples_new - samples_ref).reshape(len(samples_ref), -1)
            delta_out = outputs - reference
            for batch in batch_slices(len(reference)):
                if norm == "linf":
                    x_err = float(np.abs(delta_in[batch]).max()) / input_scale
                    y_err = float(np.abs(delta_out[batch]).max()) / ref_linf
                else:
                    x_err = (
                        float(np.linalg.norm(delta_in[batch], axis=1).max())
                        / input_scale_l2
                    )
                    y_err = float(np.linalg.norm(delta_out[batch], axis=1).max()) / ref_l2
                points.append(
                    {
                        "codec": codec_name,
                        "tolerance": float(tolerance),
                        "input_rel_err": x_err,
                        "qoi_rel_err": y_err,
                        "ratio": blob.compression_ratio,
                    }
                )
    return points


def input_output_scales(workload: TrainedWorkload) -> dict[str, float]:
    """Global normalizing constants for relative-error axes."""
    samples = samples_from_fields(workload, workload.dataset.fields)
    flat = samples.reshape(len(samples), -1)
    __, ref_linf, ref_l2 = reference_output_scales(workload)
    return {
        "input_linf": float(np.abs(samples).max()),
        "input_l2": float(np.linalg.norm(flat, axis=1).max()),
        "output_linf": ref_linf,
        "output_l2": ref_l2,
    }


def bound_line(
    analyzer,
    input_rel_errors: np.ndarray,
    norm: str,
    scales: dict[str, float],
) -> np.ndarray:
    """Relative compression-error bound (Eq. 5) along the input-error axis."""
    values = []
    for x_rel in input_rel_errors:
        if norm == "linf":
            absolute = analyzer.compression_bound_linf(x_rel * scales["input_linf"])
            values.append(absolute / scales["output_linf"])
        else:
            input_l2 = x_rel * scales["input_l2"]
            values.append(analyzer.compression_bound(input_l2) / scales["output_l2"])
    return np.asarray(values)


def variant_analyzers(name: str) -> dict:
    """QoI analyzers for the psn / plain / weight-decay variants."""
    analyzers = {}
    for variant in ("psn", "plain", "weight_decay"):
        analyzers[variant] = load_workload(name, variant=variant).qoi_analyzer()
    return analyzers
