"""Fig. 6: quantization error — predicted bound vs achieved, L2 norm.

Same experiment as Fig. 5 in the L2 norm.
"""

import numpy as np
import pytest

from conftest import print_table, run_once

from test_fig5_quant_error_linf import _quant_errors

_NORM = "l2"


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi", "eurosat"])
def test_fig6_quant_error(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    rows = run_once(benchmark, lambda: _quant_errors(workload, _NORM))
    print_table(
        f"Fig. 6 ({workload_name}): quantization error by format (L2)",
        ["format", "achieved rel", "bound rel", "devices"],
        rows,
    )
    by_format = {row[0]: row for row in rows}
    for row in rows:
        assert row[1] <= row[2], f"{row[0]} bound violated"
    assert np.isclose(by_format["tf32"][2], by_format["fp16"][2], rtol=1e-6)
    assert by_format["bf16"][2] > 3 * by_format["fp16"][2]
    assert by_format["int8"][2] > by_format["bf16"][2]
    # the gap between bound and achieved stays meaningful (not vacuous)
    for row in rows:
        assert row[2] < max(row[1], 1e-12) * 2000
