"""Ablation: block/row/column-wise INT8 quantization (paper Section VI).

The paper flags granular affine schemes as future work: grouping weights
with per-group scales captures local dynamic range and cuts the effective
step size.  This bench measures the step-size reduction and achieved QoI
error of each granularity on the trained workloads.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from figutils import samples_from_fields
from repro.quant import Granularity, granular_quantize, materialize

_GRANULARITIES = (
    Granularity.PER_TENSOR,
    Granularity.PER_ROW,
    Granularity.PER_COLUMN,
    Granularity.BLOCK,
)


def _granular_error(workload, granularity):
    model = materialize(workload.qoi_model())
    model.eval()
    samples = samples_from_fields(workload, workload.dataset.fields)
    if workload.name == "eurosat":
        samples = samples[:32]
    reference = model(samples)
    from repro.quant import quantizable_layers

    step_rms = []
    for __, layer in quantizable_layers(model):
        result = granular_quantize(
            layer.weight.data.reshape(layer.weight.data.shape[0], -1),
            bits=8,
            granularity=granularity,
            block_size=16,
        )
        layer.weight.data = result.reconstructed.reshape(layer.weight.data.shape).astype(
            np.float32
        )
        step_rms.append(result.step_rms)
    outputs = model(samples)
    scale = float(np.abs(reference).max())
    achieved = float(np.abs(outputs - reference).max()) / scale
    return float(np.mean(step_rms)), achieved


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_granular_quantization_ablation(benchmark, workloads, workload_name):
    workload = workloads[workload_name]

    def compute():
        rows = []
        for granularity in _GRANULARITIES:
            mean_step, achieved = _granular_error(workload, granularity)
            rows.append([granularity.value, mean_step, achieved])
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        f"Ablation ({workload_name}): INT8 granularity vs step size and QoI error",
        ["granularity", "mean step q", "achieved rel err"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # finer granularities never have a larger RMS step than per-tensor
    for name in ("per_row", "per_column", "block"):
        assert by_name[name][1] <= by_name["per_tensor"][1] * (1 + 1e-9)
    # and at least one of them strictly improves the step size
    assert min(by_name[n][1] for n in ("per_row", "per_column", "block")) < (
        by_name["per_tensor"][1] * 0.999
    )
