#!/usr/bin/env python
"""Loopback distributed-run benchmark: telemetry-plane overhead.

Times one coordinator + two in-process shard workers over loopback TCP
in three telemetry configurations and writes the unified ``benchutils``
row shape (``{path, config, seconds, reps_s, throughput_mb_s}`` —
record with ``repro bench record`` to feed the regression history):

* ``telemetry=off``       — tracing/metrics disabled, no endpoint;
* ``telemetry=on``        — tracing + metrics + worker METRICS pushes,
  no HTTP endpoint;
* ``telemetry=on_polled`` — everything on, ``/status`` + ``/metrics``
  polled over HTTP at 1 Hz for the whole run (still an order of magnitude
  hotter than a realistic 1-15 s scrape interval: every poll contends
  for the coordinator lock and the process's single GIL, so this is an
  upper bound on endpoint cost, not a typical one).

The headline number is ``endpoint_overhead_vs_on`` on the
``on_polled`` row: what serving + polling the HTTP endpoint adds on
top of a telemetry-enabled run — the two variants differ *only* in the
endpoint.  ``overhead_vs_off`` rows additionally price the whole ops
plane (tracing, span shipping, counter-delta pushes) against a dark
run.  Usage::

    PYTHONPATH=src python benchmarks/bench_distrib.py [--quick] [--out BENCH_pr8.json]
"""

from __future__ import annotations

import argparse
import threading
import time
import urllib.request

import numpy as np

from benchutils import finalize_rows, make_row, write_rows
from repro import obs
from repro.compress.sz import SZCompressor
from repro.core.errorflow import ErrorFlowAnalyzer
from repro.core.pipeline import InferencePipeline
from repro.core.planner import TolerancePlanner
from repro.distrib import DistribConfig, ShardWorker
from repro.nn.activations import Tanh
from repro.nn.linear import SpectralLinear
from repro.nn.sequential import Sequential
from repro.resilience import RetryPolicy, fork_available

FAST_CONNECT = RetryPolicy(max_retries=6, base_delay=0.02, max_delay=0.2, jitter=0.0)


def _setup(side: int):
    rng = np.random.default_rng(3)
    # Heavy enough that chunk compute, not pool/connect startup,
    # dominates the wall — overhead percentages are meaningless when
    # the baseline is mostly fixed cost.
    model = Sequential(
        SpectralLinear(5, 256, rng=rng), Tanh(),
        SpectralLinear(256, 256, rng=rng), Tanh(),
        SpectralLinear(256, 1, rng=rng),
    )
    model.eval()
    x = np.linspace(0, 2 * np.pi, side)
    xx, yy = np.meshgrid(x, x)
    fields = np.stack(
        [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    ).astype(np.float32)
    plan = TolerancePlanner(ErrorFlowAnalyzer(model)).plan(
        1e-2, norm="linf", quant_fraction=0.5
    )
    pipeline = InferencePipeline(model, SZCompressor(), plan)
    chunk_size = max(1, side // 16)
    return pipeline, fields, chunk_size


def _run_loopback(pipeline, fields, chunk_size, *, metrics_port, poll_hz):
    """One distributed run; returns wall seconds of execute_chunked."""
    threads = []
    stop = threading.Event()

    def launch(coordinator):
        host, port = coordinator.address
        if poll_hz and coordinator.metrics_address:
            mhost, mport = coordinator.metrics_address
            base = f"http://{mhost}:{mport}"

            def poll():
                while not stop.is_set():
                    try:
                        urllib.request.urlopen(f"{base}/status", timeout=2.0).read()
                        urllib.request.urlopen(f"{base}/metrics", timeout=2.0).read()
                    except OSError:
                        pass
                    time.sleep(1.0 / poll_hz)

            poller = threading.Thread(target=poll, daemon=True)
            threads.append(poller)
            poller.start()

        def run_one(index):
            ShardWorker(
                pipeline,
                fields,
                chunk_size,
                chunk_axis=1,
                name=f"w{index}",
                workers=2,
                connect_retry=FAST_CONNECT,
            ).run(host, port)

        for index in range(2):
            thread = threading.Thread(target=run_one, args=(index,), daemon=True)
            threads.append(thread)
            thread.start()

    config = DistribConfig(
        port=0,
        expect_workers=2,
        worker_wait=30.0,
        on_start=launch,
        metrics_port=metrics_port,
    )
    start = time.perf_counter()
    pipeline.execute_chunked(
        fields, chunk_size=chunk_size, chunk_axis=1,
        executor="distributed", distrib=config,
    )
    seconds = time.perf_counter() - start
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    return seconds


def bench_distrib(side: int, reps: int) -> list[dict]:
    pipeline, fields, chunk_size = _setup(side)
    mb = fields.nbytes / 1e6

    variants = [
        ("off", dict(telemetry=False, metrics_port=None, poll_hz=0)),
        ("on", dict(telemetry=True, metrics_port=None, poll_hz=0)),
        ("on_polled", dict(telemetry=True, metrics_port=0, poll_hz=1)),
    ]
    def timed(variant) -> float:
        if variant["telemetry"]:
            with obs.capture():
                return _run_loopback(
                    pipeline, fields, chunk_size,
                    metrics_port=variant["metrics_port"],
                    poll_hz=variant["poll_hz"],
                )
        return _run_loopback(
            pipeline, fields, chunk_size, metrics_port=None, poll_hz=0,
        )

    # Interleave variants within each rep (A B C, A B C, ...) so host
    # load drift lands on all three equally; best-of-reps then compares
    # like with like.  A sequential-block schedule on a busy 1-CPU host
    # reads drift as variant overhead.
    timed(variants[0][1])  # warmup: fork-pool + import costs
    times = {name: [] for name, _ in variants}
    for _ in range(reps):
        for name, variant in variants:
            times[name].append(timed(variant))

    rows = []
    for name, variant in variants:
        reps_s = times[name]
        best = min(reps_s)
        rows.append(
            make_row(
                "distrib_loopback",
                {
                    "telemetry": name,
                    "workers": 2,
                    "chunk_size": chunk_size,
                    "field_shape": list(fields.shape),
                    "poll_hz": variant["poll_hz"],
                    "reps": reps,
                },
                best,
                reps_s=reps_s,
                throughput_mb_s=mb / best,
            )
        )
    baseline = rows[0]["seconds"]
    telemetry_on = rows[1]["seconds"]
    for row in rows:
        row["config"]["overhead_vs_off"] = row["seconds"] / baseline - 1.0
        print(
            f"distrib_loopback[{row['config']['telemetry']}]: "
            f"{row['seconds']*1e3:.1f} ms "
            f"(overhead {row['config']['overhead_vs_off']*100:+.1f}%)"
        )
    endpoint = rows[2]["seconds"] / telemetry_on - 1.0
    rows[2]["config"]["endpoint_overhead_vs_on"] = endpoint
    print(f"endpoint overhead (on_polled vs on): {endpoint*100:+.1f}%")
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small field, 1 rep (CI smoke)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write JSON rows to FILE")
    args = parser.parse_args()
    if not fork_available():
        print("fork unavailable: shard workers need the supervised pool")
        return 1

    side = 32 if args.quick else 128
    reps = 1 if args.quick else 12
    rows = finalize_rows(bench_distrib(side, reps), args.quick)
    if args.out:
        write_rows(rows, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
