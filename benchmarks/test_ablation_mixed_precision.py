"""Ablation: per-layer mixed-format quantization (paper Section IV-D).

"The granularity of quantization can be improved by enabling per-layer
quantization with different formats, thereby introducing a significantly
larger optimization space."  This bench greedily downgrades each layer to
the cheapest format whose Eq. (3) bound still fits the budget and
compares the resulting memory footprint against uniform quantization.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from figutils import samples_from_fields
from repro.quant import FP16, FP32, INT8, materialize, quantize_model

_LADDER = (FP32, FP16, INT8)  # increasingly cheap per-layer options


def _greedy_mixed_plan(analyzer, budget):
    """Downgrade layers in order of their quantization impact.

    Layers whose INT8 noise moves the bound least are downgraded first,
    so the budget is spent where it buys the most memory.
    """
    n_layers = len(analyzer.spec.linear_specs())
    formats = [FP32] * n_layers

    def single_layer_cost(index):
        trial = [FP32] * n_layers
        trial[index] = INT8
        return analyzer.quantization_bound(trial)

    order = sorted(range(n_layers), key=single_layer_cost)
    for index in order:
        for candidate in reversed(_LADDER):  # cheapest first
            trial = list(formats)
            trial[index] = candidate
            if analyzer.quantization_bound(trial) <= budget:
                formats = trial
                break
    return formats


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_mixed_precision_beats_uniform_memory(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    analyzer = workload.qoi_analyzer()
    # budget between the FP16-uniform and INT8-uniform bounds: uniform
    # selection must fall back to FP16, mixed precision can do better
    fp16_bound = analyzer.quantization_bound(FP16)
    int8_bound = analyzer.quantization_bound(INT8)
    budget = np.sqrt(fp16_bound * int8_bound)

    def compute():
        mixed_formats = _greedy_mixed_plan(analyzer, budget)
        mixed = quantize_model(workload.qoi_model(), mixed_formats)
        uniform = quantize_model(workload.qoi_model(), FP16)
        model = materialize(workload.qoi_model())
        model.eval()
        samples = samples_from_fields(workload, workload.dataset.fields)
        reference = model(samples)
        achieved = float(np.abs(mixed(samples) - reference).max())
        return mixed_formats, mixed, uniform, achieved

    mixed_formats, mixed, uniform, achieved = run_once(benchmark, compute)
    rows = [
        [name, fmt.name, q]
        for name, fmt, q in zip(mixed.layer_names, mixed.formats, mixed.step_sizes)
    ]
    print_table(
        f"Ablation ({workload_name}): greedy per-layer formats (budget {budget:.2e})",
        ["layer", "format", "step q"],
        rows,
    )
    print(
        f"\nmemory: mixed {mixed.quantized_bytes} B vs uniform-fp16 "
        f"{uniform.quantized_bytes} B; achieved {achieved:.3e} <= budget {budget:.3e}"
    )
    assert analyzer.quantization_bound(mixed_formats) <= budget
    assert achieved <= budget
    # the larger optimization space must be exploited: at least one layer
    # dropped below FP16 while respecting a budget uniform INT8 violates
    assert any(fmt is INT8 for fmt in mixed_formats)
    # On deep networks (Borghesi, 9 layers) the per-layer freedom wins on
    # memory; on the 3-layer H2 net the FP32 fallback of the dominant
    # layer can outweigh the INT8 savings — a genuine ablation finding.
    if workload_name == "borghesi":
        assert mixed.quantized_bytes < uniform.quantized_bytes
