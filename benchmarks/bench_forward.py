#!/usr/bin/env python
"""Forward-pass benchmark for the compiled execution backends.

Times a single-sample (batch=1) forward pass — the serving-latency case
— of a 4x1024-wide spectral PReLU MLP under each backend and writes the
unified ``benchutils`` row shape (``{path, config, seconds, reps_s,
throughput_samples_s}`` — record with ``repro bench record`` to feed the
regression history):

* ``reference``       — interpreted per-module dispatch (``model(x)``);
* ``fused_cold``      — one cold call including lowering + codegen + bind
  (the compile cost a first request pays);
* ``fused_warm``      — steady state.  The win here is structural: the
  linker hoists the SpectralLinear weight materialization
  (``normalized.T * alpha``, recomputed per call by the interpreter)
  into a bound constant, on top of preallocated buffers and in-place
  ufuncs;
* ``fused_disk_warm`` — a fresh in-memory cache sharing the same disk
  directory: the cross-process cost when the generated source is served
  from disk and only ``exec`` + bind run;
* ``numba``           — only when the optional numba package is
  importable (skipped row otherwise).

Two gates are asserted (and recorded in the rows) so CI catches
regressions:

* ``fused_warm`` must be >= 2x ``reference`` at batch 1;
* the warm path must do exactly one lowering and one compile across all
  timed calls and batch sizes (zero recompiles).

Bit-exactness is asserted before timing: every backend output must be
``np.array_equal`` to the reference.  Usage::

    PYTHONPATH=src python benchmarks/bench_forward.py [--quick] [--out BENCH_pr9.json]
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import numpy as np

from benchutils import best_of, finalize_rows, make_row, write_rows
from repro.models import build_mlp
from repro.nn.backend import CompiledForward, numba_available
from repro.perf.compile_cache import CompileCache, get_compile_cache, reset_compile_cache


def _bench_model():
    """The serving-latency model: wide spectral PReLU MLP, batch 1.

    SpectralLinear is the paper's training recipe, and its interpreted
    forward re-materializes ``normalized.T * alpha`` every call — the
    exact cost the compiled backends hoist to compile time.
    """
    model = build_mlp(
        64, [1024, 1024, 1024, 1024], 8, activation="prelu", spectral=True,
        rng=np.random.default_rng(7),
    )
    model.eval()
    return model


def _row(path: str, config: dict, seconds: float, calls: int, reps_s=None) -> dict:
    return make_row(
        path, config, seconds, reps_s=reps_s,
        throughput_samples_s=calls / seconds,
    )


def bench_forward(reps: int, inner: int) -> list[dict]:
    model = _bench_model()
    x = np.random.default_rng(11).standard_normal((1, 64)).astype(np.float32)
    base_config = {"model": "mlp64x1024x4x8_spectral_prelu", "batch": 1,
                   "inner_calls": inner, "reps": reps}

    expected = model(x)

    def timed_loop(fn):
        def run():
            for _ in range(inner):
                fn(x)
        best, times = best_of(run, reps)
        return best / inner, [t / inner for t in times]

    rows = []

    ref_seconds, ref_reps = timed_loop(model)
    rows.append(_row("forward", dict(base_config, backend="reference"),
                     ref_seconds, 1, reps_s=ref_reps))

    with tempfile.TemporaryDirectory() as scratch:
        os.environ["REPRO_COMPILE_CACHE_DIR"] = scratch
        reset_compile_cache()

        # cold: first call pays lowering + codegen + exec/bind
        fused = CompiledForward(model, "fused")
        start = time.perf_counter()
        cold_out = fused(x)
        cold_seconds = time.perf_counter() - start
        assert np.array_equal(cold_out, expected), "fused output not bit-exact"
        rows.append(_row("forward", dict(base_config, backend="fused_cold",
                                         inner_calls=1, reps=1),
                         cold_seconds, 1))

        # warm steady state, exercising several batch sizes in between to
        # prove buffer reallocation does not trigger recompiles
        warm_seconds, warm_reps = timed_loop(fused)
        for batch in (1, 4, 16, 1):
            xb = np.random.default_rng(batch).standard_normal((batch, 64)).astype(np.float32)
            assert np.array_equal(fused(xb), model(xb))
        second_seconds, second_reps = timed_loop(fused)
        warm_seconds = min(warm_seconds, second_seconds)
        warm_reps = warm_reps + second_reps
        assert fused.stats["lowerings"] == 1, fused.stats
        assert fused.stats["compiles"] == 1, fused.stats
        assert fused.stats["fallbacks"] == 0, fused.stats
        rows.append(_row("forward", dict(base_config, backend="fused_warm",
                                         lowerings=fused.stats["lowerings"],
                                         compiles=fused.stats["compiles"]),
                         warm_seconds, 1, reps_s=warm_reps))

        # cross-process restart: fresh memory cache, same disk directory —
        # source comes off disk, only exec + bind run
        reset_compile_cache()
        disk_cache = get_compile_cache()
        assert isinstance(disk_cache, CompileCache)
        restarted = CompiledForward(model, "fused")
        start = time.perf_counter()
        assert np.array_equal(restarted(x), expected)
        disk_cold_seconds = time.perf_counter() - start
        assert disk_cache.stats["source_disk_hits"] == 1, disk_cache.stats
        assert disk_cache.stats["source_generated"] == 0, disk_cache.stats
        rows.append(_row("forward", dict(base_config, backend="fused_disk_warm",
                                         inner_calls=1, reps=1,
                                         source_disk_hits=1),
                         disk_cold_seconds, 1))

        if numba_available():
            jitted = CompiledForward(model, "numba")
            out = jitted(x)
            if jitted.last_fallback_reason is None:
                assert np.array_equal(out, expected), "numba output not bit-exact"
                numba_seconds, numba_reps = timed_loop(jitted)
                rows.append(_row("forward", dict(base_config, backend="numba"),
                                 numba_seconds, 1, reps_s=numba_reps))
            else:
                print(f"numba fell back: {jitted.last_fallback_reason}")
        else:
            print("numba not installed: skipping numba row")

        os.environ.pop("REPRO_COMPILE_CACHE_DIR", None)
        reset_compile_cache()

    for row in rows:
        row["config"]["speedup_vs_reference"] = ref_seconds / row["seconds"]
    for row in rows:
        backend = row["config"]["backend"]
        print(f"forward[{backend}]: {row['seconds']*1e6:.1f} us/call "
              f"({row['config']['speedup_vs_reference']:.2f}x vs reference)")

    warm_row = next(r for r in rows if r["config"]["backend"] == "fused_warm")
    speedup = warm_row["config"]["speedup_vs_reference"]
    assert speedup >= 2.0, (
        f"fused warm speedup {speedup:.2f}x below the 2x gate"
    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer timed calls (CI smoke)")
    parser.add_argument("--out", default="BENCH_pr9.json")
    args = parser.parse_args(argv)

    reps = 3 if args.quick else 5
    inner = 200 if args.quick else 1000

    rows = finalize_rows(bench_forward(reps, inner), args.quick)
    write_rows(rows, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
