"""Shared fixtures and reporting helpers for the figure benchmarks.

Every file in this directory regenerates one table or figure of the
paper.  Benchmarks print the same rows/series the paper plots, so the
shapes (who wins, by what factor, where crossovers fall) can be compared
directly; see EXPERIMENTS.md for the recorded comparison.

Heavy one-off computations run through ``benchmark.pedantic(fn,
rounds=1)`` so ``--benchmark-only`` times a single execution instead of
re-running multi-second experiments for statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import load_workload

TOLERANCE_GRID = np.logspace(-5, -1, 9)
INPUT_ERROR_GRID = np.logspace(-6, -2, 5)


@pytest.fixture(scope="session")
def h2():
    return load_workload("h2combustion")


@pytest.fixture(scope="session")
def borghesi():
    return load_workload("borghesi")


@pytest.fixture(scope="session")
def eurosat():
    return load_workload("eurosat")


@pytest.fixture(scope="session")
def workloads(h2, borghesi, eurosat):
    return {"h2combustion": h2, "borghesi": borghesi, "eurosat": eurosat}


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render one figure's data series as an aligned text table."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header[i])), max((len(_fmt(r[i])) for r in rows), default=0))
              for i in range(len(header))]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def run_once(benchmark, fn):
    """Time ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
