"""Fig. 5: quantization error — predicted bound vs achieved, L-infinity.

For each workload and each quantization format (TF32/FP16/BF16/INT8), the
relative QoI error of the weight-quantized network against the Eq. (3)
bound, across the three GPU profiles.  TF32/BF16 rows exist only for the
RTX 3080 Ti, matching the paper's hardware support note; emulated BF16 on
V100/MI250X is numerically identical (the paper's emulation point).
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from figutils import samples_from_fields
from repro.perf import GPU_PROFILES
from repro.quant import STANDARD_FORMATS, materialize, quantize_model

_FORMATS = ("tf32", "fp16", "bf16", "int8")
_NORM = "linf"


def _quant_errors(workload, norm):
    model = workload.qoi_model()
    model.eval()
    samples = samples_from_fields(workload, workload.dataset.fields)
    if workload.name == "eurosat":
        samples = samples[:64]
    reference = materialize(model)(samples).reshape(len(samples), -1)
    if norm == "linf":
        scale = float(np.abs(reference).max())
    else:
        scale = float(np.linalg.norm(reference, axis=1).max())
    analyzer = workload.qoi_analyzer()
    rows = []
    for fmt_name in _FORMATS:
        fmt = STANDARD_FORMATS[fmt_name]
        quantized = quantize_model(model, fmt)
        outputs = quantized(samples).reshape(len(samples), -1)
        delta = outputs - reference
        if norm == "linf":
            achieved = float(np.abs(delta).max()) / scale
        else:
            achieved = float(np.linalg.norm(delta, axis=1).max()) / scale
        bound = analyzer.quantization_bound(fmt) / scale
        devices = [name for name, gpu in GPU_PROFILES.items() if gpu.supports(fmt_name)]
        rows.append([fmt_name, achieved, bound, "+".join(sorted(devices))])
    return rows


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi", "eurosat"])
def test_fig5_quant_error(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    rows = run_once(benchmark, lambda: _quant_errors(workload, _NORM))
    print_table(
        f"Fig. 5 ({workload_name}): quantization error by format (Linf)",
        ["format", "achieved rel", "bound rel", "devices"],
        rows,
    )
    by_format = {row[0]: row for row in rows}
    for row in rows:
        assert row[1] <= row[2], f"{row[0]} bound violated"
    # TF32 and FP16 bounds nearly identical (same mantissa width).
    assert np.isclose(by_format["tf32"][2], by_format["fp16"][2], rtol=1e-6)
    # BF16 considerably higher than FP16; INT8 the worst.
    assert by_format["bf16"][2] > 3 * by_format["fp16"][2]
    assert by_format["int8"][2] > by_format["bf16"][2]
    # achieved error grows as precision decreases
    assert by_format["int8"][1] >= by_format["fp16"][1]
    # TF32/BF16 only available on the RTX profile
    assert by_format["tf32"][3] == "rtx3080ti"


def test_fig5_int8_exceeds_1e_2_on_some_tasks(benchmark, workloads):
    """Paper: 'INT8 quantization introduces a larger relative error,
    exceeding 1e-2 in two tasks' — verify the worst case is significant."""

    def compute():
        worst = 0.0
        for workload in workloads.values():
            rows = _quant_errors(workload, _NORM)
            worst = max(worst, {r[0]: r[1] for r in rows}["int8"])
        return worst

    worst = run_once(benchmark, compute)
    assert worst > 1e-3
