#!/usr/bin/env python
"""Micro-benchmarks for the chunked-execution hot paths.

Four paths are timed and written in the unified ``benchutils`` row
shape (``{path, config, seconds, reps_s, throughput_mb_s}`` — record
with ``repro bench record`` to feed the regression history; see
docs/PERFORMANCE.md for how to read the output):

* ``huffman_decode``      — vectorized table-walk decoder vs the retained
  scalar ``_decode_reference`` on a peaked 1M-symbol stream;
* ``bound_eval``          — a planner-style format x fraction sweep with
  cold caches vs warm caches;
* ``pipeline_chunked``    — ``InferencePipeline.execute_chunked`` serial
  vs the supervised 4-worker process pool;
* ``pipeline_checkpoint`` — the same serial run with and without the
  durable checkpoint journal (journaling overhead).

Throughput numbers are hardware-dependent (the pool speedups in
particular require free cores — ``config.cpu_count`` records what was
available; on a 1-CPU host the process-pool row's ``overhead_vs_serial``
is the fault-free supervision+IPC cost instead of a speedup).  Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--quick] [--out BENCH_pr6.json]
"""

from __future__ import annotations

import argparse
import os
import tempfile

import numpy as np

from benchutils import best_of, finalize_rows, make_row, write_rows
from repro.compress.huffman import _decode_reference, huffman_decode, huffman_encode
from repro.compress.sz import SZCompressor
from repro.core.errorflow import ErrorFlowAnalyzer
from repro.core.pipeline import InferencePipeline
from repro.core.planner import TolerancePlanner
from repro.nn.activations import Tanh
from repro.nn.linear import Linear, SpectralLinear
from repro.nn.sequential import Sequential
from repro.perf.cache import clear_all_caches, get_memo
from repro.quant.formats import STANDARD_FORMATS


def bench_huffman(n_symbols: int, reps: int) -> list[dict]:
    rng = np.random.default_rng(0)
    # Peaked residual-like distribution: what the predictor stages emit.
    symbols = np.round(rng.normal(0.0, 0.7, size=n_symbols)).astype(np.int32)
    blob = huffman_encode(symbols)
    raw_mb = symbols.nbytes / 1e6

    assert np.array_equal(huffman_decode(blob), _decode_reference(blob))

    rows = []
    for impl, fn in (("scalar_reference", _decode_reference), ("vectorized", huffman_decode)):
        get_memo("huffman_tables").clear()
        seconds, reps_s = best_of(lambda fn=fn: fn(blob), reps)
        rows.append(
            make_row(
                "huffman_decode",
                {
                    "impl": impl,
                    "n_symbols": n_symbols,
                    "reps": reps,
                    "compressed_bytes": len(blob),
                },
                seconds,
                reps_s=reps_s,
                throughput_mb_s=raw_mb / seconds,
            )
        )
    speedup = rows[0]["seconds"] / rows[1]["seconds"]
    for row in rows:
        row["config"]["speedup_vs_scalar"] = speedup
    print(f"huffman_decode: scalar {rows[0]['seconds']*1e3:.1f} ms, "
          f"vectorized {rows[1]['seconds']*1e3:.1f} ms -> {speedup:.1f}x")
    return rows


def bench_bound_eval(reps: int) -> list[dict]:
    rng = np.random.default_rng(1)
    # Plain Linear layers: sigma comes from power iteration (the cached
    # kernel) rather than a SpectralLinear's exact alpha.
    model = Sequential(
        Linear(256, 1024, rng=rng), Tanh(),
        Linear(1024, 1024, rng=rng), Tanh(),
        Linear(1024, 8, rng=rng),
    )
    model.eval()
    formats = [STANDARD_FORMATS[name] for name in ("tf32", "fp16", "bf16", "int8")]
    fractions = [0.1 * k for k in range(1, 10)]

    def sweep() -> None:
        analyzer = ErrorFlowAnalyzer(model)
        planner = TolerancePlanner(analyzer)
        for fraction in fractions:
            planner.plan(1e-2, norm="linf", quant_fraction=fraction)
        for fmt in formats:
            analyzer.quantization_bound(fmt)
            analyzer.gain()

    def cold() -> None:
        clear_all_caches()
        sweep()

    def warm() -> None:
        sweep()

    n_evals = len(fractions) + 2 * len(formats)
    rows = []
    clear_all_caches()
    for state, fn in (("cold", cold), ("warm", warm)):
        seconds, reps_s = best_of(fn, reps)
        rows.append(
            make_row(
                "bound_eval",
                {"cache": state, "evaluations": n_evals, "reps": reps},
                seconds,
                reps_s=reps_s,
                throughput_mb_s=None,
            )
        )
    speedup = rows[0]["seconds"] / rows[1]["seconds"]
    for row in rows:
        row["config"]["speedup_vs_cold"] = speedup
    print(f"bound_eval: cold {rows[0]['seconds']*1e3:.1f} ms, "
          f"warm {rows[1]['seconds']*1e3:.1f} ms -> {speedup:.1f}x")
    return rows


def _chunked_pipeline_setup(side: int, workers: int):
    rng = np.random.default_rng(2)
    model = Sequential(
        SpectralLinear(5, 64, rng=rng), Tanh(), SpectralLinear(64, 1, rng=rng)
    )
    model.eval()
    x = np.linspace(0, 2 * np.pi, side)
    xx, yy = np.meshgrid(x, x)
    fields = np.stack(
        [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    ).astype(np.float32)
    plan = TolerancePlanner(ErrorFlowAnalyzer(model)).plan(
        1e-2, norm="linf", quant_fraction=0.5
    )
    pipeline = InferencePipeline(model, SZCompressor(), plan)
    chunk_size = max(1, side // (2 * workers))
    return pipeline, fields, chunk_size


def bench_pipeline_chunked(side: int, workers: int, reps: int) -> list[dict]:
    pipeline, fields, chunk_size = _chunked_pipeline_setup(side, workers)
    mb = fields.nbytes / 1e6

    configs = [
        ("serial", dict(workers=1)),
        ("process", dict(workers=workers, executor="process")),
    ]
    rows = []
    for executor, kwargs in configs:
        seconds, reps_s = best_of(
            lambda kw=kwargs: pipeline.execute_chunked(
                fields, chunk_size=chunk_size, chunk_axis=1, **kw
            ),
            reps,
        )
        rows.append(
            make_row(
                "pipeline_chunked",
                {
                    "executor": executor,
                    "workers": kwargs.get("workers", 1),
                    "chunk_size": chunk_size,
                    "field_shape": list(fields.shape),
                    "reps": reps,
                },
                seconds,
                reps_s=reps_s,
                throughput_mb_s=mb / seconds,
            )
        )
    serial = rows[0]["seconds"]
    for row in rows:
        row["config"]["speedup_vs_serial"] = serial / row["seconds"]
        # > 0 means slower than serial: on a core-starved host this is
        # the pool's fault-free overhead (fork + IPC + supervision)
        row["config"]["overhead_vs_serial"] = row["seconds"] / serial - 1.0
    for row in rows:
        print(
            f"pipeline_chunked[{row['config']['executor']}]: "
            f"{row['seconds']*1e3:.1f} ms "
            f"({row['config']['speedup_vs_serial']:.2f}x vs serial)"
        )
    return rows


def bench_pipeline_checkpoint(side: int, workers: int, reps: int) -> list[dict]:
    pipeline, fields, chunk_size = _chunked_pipeline_setup(side, workers)
    mb = fields.nbytes / 1e6

    rows = []
    with tempfile.TemporaryDirectory() as scratch:
        configs = [
            ("off", dict()),
            # resume=False every rep: fresh journal, full write cost
            ("on", dict(checkpoint=os.path.join(scratch, "ck"))),
        ]
        for journal, kwargs in configs:
            seconds, reps_s = best_of(
                lambda kw=kwargs: pipeline.execute_chunked(
                    fields, chunk_size=chunk_size, chunk_axis=1, workers=1, **kw
                ),
                reps,
            )
            rows.append(
                make_row(
                    "pipeline_checkpoint",
                    {
                        "journal": journal,
                        "chunk_size": chunk_size,
                        "field_shape": list(fields.shape),
                        "reps": reps,
                    },
                    seconds,
                    reps_s=reps_s,
                    throughput_mb_s=mb / seconds,
                )
            )
    overhead = rows[1]["seconds"] / rows[0]["seconds"] - 1.0
    for row in rows:
        row["config"]["journal_overhead"] = overhead
    print(
        f"pipeline_checkpoint: off {rows[0]['seconds']*1e3:.1f} ms, "
        f"on {rows[1]['seconds']*1e3:.1f} ms -> {overhead*100:.1f}% overhead"
    )
    return rows


def bench_pipeline_distributed(side: int, reps: int) -> list[dict]:
    """Loopback coordinator + 2 in-thread worker agents vs serial.

    Measures the wire-protocol tax (framing, base64 artifacts, journal
    merge) with inline single-process pools on both workers, so the
    number is pure distribution overhead, not fork/IPC cost."""
    import threading

    from repro.distrib import DistribConfig, ShardWorker
    from repro.resilience import RetryPolicy

    pipeline, fields, chunk_size = _chunked_pipeline_setup(side, 2)
    mb = fields.nbytes / 1e6

    serial_seconds, serial_reps = best_of(
        lambda: pipeline.execute_chunked(
            fields, chunk_size=chunk_size, chunk_axis=1, workers=1
        ),
        reps,
    )

    def one_run():
        threads = []

        def launch(coordinator):
            host, port = coordinator.address

            def run_one(index):
                ShardWorker(
                    pipeline,
                    fields,
                    chunk_size,
                    chunk_axis=1,
                    name=f"bench-w{index}",
                    workers=1,
                    connect_retry=RetryPolicy(
                        max_retries=6, base_delay=0.02, max_delay=0.2, jitter=0.0
                    ),
                ).run(host, port)

            for index in range(2):
                thread = threading.Thread(
                    target=run_one, args=(index,), daemon=True
                )
                threads.append(thread)
                thread.start()

        pipeline.execute_chunked(
            fields,
            chunk_size=chunk_size,
            chunk_axis=1,
            executor="distributed",
            distrib=DistribConfig(
                port=0, lease_ttl=5.0, worker_wait=15.0,
                expect_workers=2, on_start=launch,
            ),
        )
        for thread in threads:
            thread.join(timeout=15.0)

    distributed_seconds, distributed_reps = best_of(one_run, reps)
    rows = [
        make_row(
            "pipeline_distributed",
            {
                "executor": executor,
                "workers": workers,
                "chunk_size": chunk_size,
                "field_shape": list(fields.shape),
                "reps": reps,
                "speedup_vs_serial": serial_seconds / seconds,
                "overhead_vs_serial": seconds / serial_seconds - 1.0,
            },
            seconds,
            reps_s=reps_s,
            throughput_mb_s=mb / seconds,
        )
        for executor, workers, seconds, reps_s in (
            ("serial", 1, serial_seconds, serial_reps),
            ("distributed", 2, distributed_seconds, distributed_reps),
        )
    ]
    overhead = distributed_seconds / serial_seconds - 1.0
    print(
        f"pipeline_distributed: serial {serial_seconds*1e3:.1f} ms, "
        f"loopback 2-worker {distributed_seconds*1e3:.1f} ms "
        f"-> {overhead*100:.1f}% overhead"
    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller streams / fewer reps (CI smoke)")
    parser.add_argument("--out", default="BENCH_pr6.json")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    reps = 2 if args.quick else 3
    n_symbols = 1_000_000
    side = 64 if args.quick else 128

    rows = []
    rows += bench_huffman(n_symbols, reps)
    rows += bench_bound_eval(reps)
    rows += bench_pipeline_chunked(side, args.workers, reps)
    rows += bench_pipeline_checkpoint(side, args.workers, reps)
    rows += bench_pipeline_distributed(side, reps)
    finalize_rows(rows, args.quick)
    write_rows(rows, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
