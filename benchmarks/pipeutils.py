"""Shared pipeline-sweep driver for Figs. 10-15."""

from __future__ import annotations

import numpy as np

from repro import InferencePipeline, TolerancePlanner, TrainedWorkload
from repro.compress import MGARDCompressor, SZCompressor, ZFPCompressor
from repro.models import model_flops
from repro.perf import ExecutionModel, IOModel, RTX3080TI
from repro.quant import materialize

CODEC_CLASSES = {"sz": SZCompressor, "zfp": ZFPCompressor, "mgard": MGARDCompressor}

_INPUT_SHAPES = {"h2combustion": (9,), "borghesi": (13,), "eurosat": (13, 24, 24)}


def exec_throughput_gbps(workload: TrainedWorkload, fmt_name: str) -> float:
    """Model-execution data throughput for the workload's surrogate."""
    shape = _INPUT_SHAPES[workload.name]
    flops = model_flops(materialize(workload.model), shape)
    bytes_per_sample = int(np.prod(shape)) * 4
    return ExecutionModel(RTX3080TI).data_throughput_gbps(flops, bytes_per_sample, fmt_name)


def pipeline_sweep(
    workload: TrainedWorkload,
    codec_name: str,
    norm: str,
    tolerances: np.ndarray,
    fractions: tuple[float, ...] = (0.1, 0.5, 0.9),
) -> list[dict]:
    """Run the full planned pipeline across tolerances and allocations.

    Returns one record per (tolerance, fraction): the chosen format, the
    predicted Eq. (3) bound, the achieved QoI error, the measured
    compression ratio, and modeled I/O / execution / total throughput.
    """
    from figutils import samples_from_fields

    planner = TolerancePlanner(workload.qoi_analyzer())
    io_model = IOModel()
    records = []
    for tolerance in tolerances:
        for fraction in fractions:
            plan = planner.plan(float(tolerance), norm=norm, quant_fraction=fraction)
            pipeline = InferencePipeline(
                workload.qoi_model(), CODEC_CLASSES[codec_name](), plan
            )
            result = pipeline.execute(
                workload.dataset.fields,
                samples_from_fields=lambda f: samples_from_fields(workload, f),
            )
            io_gbps = io_model.throughput_gbps(codec_name, result.compression_ratio)
            exec_gbps = exec_throughput_gbps(workload, plan.fmt.name)
            fmt = None if plan.fmt.is_identity else plan.fmt
            analyzer = workload.qoi_analyzer()
            if norm == "linf":
                input_l2 = plan.input_tolerance * np.sqrt(analyzer.n_input)
            else:
                input_l2 = plan.input_tolerance
            records.append(
                {
                    "tolerance": float(tolerance),
                    "fraction": float(fraction),
                    "fmt": plan.fmt.name,
                    "predicted_bound": analyzer.combined_bound(input_l2, fmt),
                    "achieved": result.qoi_error(norm, relative=False),
                    "ratio": result.compression_ratio,
                    "io_gbps": io_gbps,
                    "exec_gbps": exec_gbps,
                    "total_gbps": min(io_gbps, exec_gbps),
                }
            )
    return records


def baseline_total_gbps(workload: TrainedWorkload) -> float:
    """Uncompressed FP32 pipeline throughput (the 1x reference)."""
    return min(IOModel().baseline_gbps, exec_throughput_gbps(workload, "fp32"))


def sweep_rows(records: list[dict]) -> list[list]:
    return [
        [
            r["tolerance"],
            r["fraction"],
            r["fmt"],
            r["predicted_bound"],
            r["achieved"],
            r["ratio"],
            r["io_gbps"],
            r["exec_gbps"],
            r["total_gbps"],
        ]
        for r in records
    ]


SWEEP_HEADER = [
    "qoi tol",
    "quant frac",
    "format",
    "pred bound",
    "achieved",
    "ratio",
    "io GB/s",
    "exec GB/s",
    "total GB/s",
]


def assert_sweep_contract(records: list[dict]) -> None:
    """Invariants every pipeline sweep must satisfy."""
    for record in records:
        assert record["achieved"] <= record["tolerance"] * (1 + 1e-9), (
            f"tolerance violated at {record['tolerance']:.1e} "
            f"(achieved {record['achieved']:.3e})"
        )
        assert record["achieved"] <= record["predicted_bound"] * (1 + 1e-9)
        assert record["predicted_bound"] <= record["tolerance"] * (1 + 1e-9)
    # total throughput is non-decreasing in tolerance at fixed fraction
    fractions = sorted({r["fraction"] for r in records})
    for fraction in fractions:
        series = [r for r in records if r["fraction"] == fraction]
        series.sort(key=lambda r: r["tolerance"])
        totals = [r["total_gbps"] for r in series]
        assert totals[-1] >= totals[0] * 0.99
