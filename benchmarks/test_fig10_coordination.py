"""Fig. 10: coordination of data reduction and quantization on H2.

Left panel: with quantization prioritized (a large allocation fraction),
compression exploits the gap between the chosen format's error bound and
the total tolerance.  Right panel: I/O vs execution throughput — for the
tiny H2 surrogate, model execution is the pipeline bottleneck at every
tolerance, exactly as the paper reports.
"""

import numpy as np

from conftest import print_table, run_once
from pipeutils import (
    SWEEP_HEADER,
    assert_sweep_contract,
    baseline_total_gbps,
    pipeline_sweep,
    sweep_rows,
)

_TOLERANCES = np.logspace(-4, -1, 7)


def test_fig10_quantization_priority(benchmark, h2):
    records = run_once(
        benchmark,
        lambda: pipeline_sweep(h2, "sz", "linf", _TOLERANCES, fractions=(0.9,)),
    )
    print_table("Fig. 10 (h2combustion, SZ, quantization prioritized)", SWEEP_HEADER, sweep_rows(records))
    assert_sweep_contract(records)

    formats = [r["fmt"] for r in records]
    # quantization activates once the tolerance admits a format: the
    # format sequence moves monotonically toward cheaper formats
    order = {"fp32": 0, "tf32": 1, "bf16": 2, "fp16": 3, "int8": 4}
    ranks = [order[f] for f in formats]
    assert ranks == sorted(ranks), f"format selection not monotone: {formats}"
    assert formats[-1] in ("fp16", "int8"), "loose tolerance should admit a fast format"

    # Paper: "model execution is a bottleneck ... consistently smaller
    # than that of the I/O, even at the point where 100% of the total
    # tolerance is allocated to quantization."
    for record in records:
        assert record["exec_gbps"] <= record["io_gbps"] * 1.05

    # Once quantization kicks in, the end-to-end pipeline clearly beats
    # the uncompressed FP32 baseline.
    baseline = baseline_total_gbps(h2)
    speedup = records[-1]["total_gbps"] / baseline
    print(f"\nend-to-end speedup at loosest tolerance: {speedup:.2f}x over {baseline:.2f} GB/s")
    assert speedup > 3.0
