"""Fig. 3: compression-error bound vs achieved QoI error, L-infinity norm.

For each workload: the achieved relative QoI error distribution (three
codecs, five independent batches) against the relative input error, the
Eq. (5) bound line of the PSN-trained network, and the baseline /
weight-decay bound lines the paper compares against.  Right panels:
per-feature QoI error at a relative input error of 1e-5.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from figutils import (
    bound_line,
    compression_error_sweep,
    input_output_scales,
    samples_from_fields,
    variant_analyzers,
)

_INPUT_ERRORS = np.logspace(-6, -2, 5)
_NORM = "linf"


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi", "eurosat"])
def test_fig3_global_error(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    scales = input_output_scales(workload)
    analyzers = variant_analyzers(workload_name)

    def compute():
        return compression_error_sweep(workload, _INPUT_ERRORS, _NORM)

    points = run_once(benchmark, compute)

    rows = []
    bound_values = {
        variant: bound_line(analyzer, _INPUT_ERRORS / scales["input_linf"], _NORM, scales)
        for variant, analyzer in analyzers.items()
    }
    for index, tolerance in enumerate(_INPUT_ERRORS):
        at_tol = [p for p in points if p["tolerance"] == tolerance]
        achieved = np.array([p["qoi_rel_err"] for p in at_tol])
        geo = float(np.exp(np.mean(np.log(np.maximum(achieved, 1e-300)))))
        rows.append(
            [
                tolerance,
                geo,
                achieved.max(),
                bound_values["psn"][index],
                bound_values["plain"][index],
                bound_values["weight_decay"][index],
            ]
        )
    print_table(
        f"Fig. 3 ({workload_name}): relative QoI error vs input tolerance (Linf)",
        ["input tol", "achieved geo", "achieved max", "bound (psn)", "bound (plain)", "bound (wd)"],
        rows,
    )

    # The PSN bound must cover the worst achieved error at every level.
    for row in rows:
        assert row[2] <= row[3] * (1 + 1e-9), f"bound violated at tol {row[0]}"
    # PSN training yields a tighter bound than the unregularized baseline.
    assert bound_values["psn"][-1] < bound_values["plain"][-1]


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_fig3_per_feature_error(benchmark, workloads, workload_name):
    """Right panels: per-feature QoI error at relative input error 1e-5."""
    workload = workloads[workload_name]
    epsilon = 1e-5
    model = workload.qoi_model()
    model.eval()
    analyzer = workload.qoi_analyzer()

    def compute():
        from repro.compress import ErrorBoundMode, SZCompressor

        fields = workload.dataset.fields
        codec = SZCompressor()
        blob = codec.compress(fields, epsilon, ErrorBoundMode.ABS)
        reconstruction = codec.decompress(blob)
        reference = model(samples_from_fields(workload, fields))
        outputs = model(samples_from_fields(workload, reconstruction))
        achieved = np.abs(outputs - reference).max(axis=0)
        bounds = analyzer.per_feature_bounds_linf(epsilon, None)
        return achieved, bounds

    achieved, bounds = run_once(benchmark, compute)
    scale = np.abs(model(samples_from_fields(workload, workload.dataset.fields))).max()
    rows = [
        [feature, achieved[feature] / scale, bounds[feature] / scale]
        for feature in range(len(achieved))
    ]
    print_table(
        f"Fig. 3 ({workload_name}): per-feature QoI error at input 1e-5 (Linf)",
        ["feature", "achieved", "bound"],
        rows,
    )
    assert np.all(achieved <= bounds)
