"""Fig. 12: predicted bound + throughput vs user tolerance; MGARD, L2.

Same sweep as Fig. 11 under an L2 QoI tolerance (MGARD supports L2
tolerances natively, unlike ZFP).
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from pipeutils import (
    SWEEP_HEADER,
    assert_sweep_contract,
    pipeline_sweep,
    sweep_rows,
)

_TOLERANCES = np.logspace(-3, -1, 4)
CODEC = "mgard"
NORM = "l2"


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_fig12_pipeline(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    records = run_once(
        benchmark, lambda: pipeline_sweep(workload, CODEC, NORM, _TOLERANCES)
    )
    print_table(
        f"Fig. 12 ({workload_name}, {CODEC}, {NORM}): planned pipeline sweep",
        SWEEP_HEADER,
        sweep_rows(records),
    )
    assert_sweep_contract(records)
    # a lower quantization fraction delays the first non-FP32 format to a
    # larger total tolerance (Section IV-D: "lower proportion ... shifts
    # the occurrence of quantization rightwards")
    def first_quant_tolerance(fraction):
        for record in sorted(records, key=lambda r: r["tolerance"]):
            if record["fraction"] == fraction and record["fmt"] != "fp32":
                return record["tolerance"]
        return np.inf

    assert first_quant_tolerance(0.1) >= first_quant_tolerance(0.9)
