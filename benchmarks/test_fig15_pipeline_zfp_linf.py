"""Fig. 15: predicted bound + throughput vs user tolerance; ZFP, L-inf.

ZFP appears only in the L-infinity figure family: it has no L2 tolerance
mode (enforced by the framework, tested in Fig. 8).
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from pipeutils import SWEEP_HEADER, assert_sweep_contract, pipeline_sweep, sweep_rows

_TOLERANCES = np.logspace(-4, -1, 5)
CODEC = "zfp"
NORM = "linf"


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi", "eurosat"])
def test_fig15_pipeline(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    records = run_once(
        benchmark, lambda: pipeline_sweep(workload, CODEC, NORM, _TOLERANCES)
    )
    print_table(
        f"Fig. 15 ({workload_name}, {CODEC}, {NORM}): planned pipeline sweep",
        SWEEP_HEADER,
        sweep_rows(records),
    )
    assert_sweep_contract(records)
    # ZFP's stable decompression keeps its I/O throughput in a narrow band
    io_values = [r["io_gbps"] for r in records]
    assert max(io_values) / min(io_values) < 8.0
