"""Fig. 14: predicted bound + throughput vs user tolerance; SZ, L2."""

import numpy as np
import pytest

from conftest import print_table, run_once
from pipeutils import SWEEP_HEADER, assert_sweep_contract, pipeline_sweep, sweep_rows

_TOLERANCES = np.logspace(-3, -1, 4)
CODEC = "sz"
NORM = "l2"


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_fig14_pipeline(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    records = run_once(
        benchmark, lambda: pipeline_sweep(workload, CODEC, NORM, _TOLERANCES)
    )
    print_table(
        f"Fig. 14 ({workload_name}, {CODEC}, {NORM}): planned pipeline sweep",
        SWEEP_HEADER,
        sweep_rows(records),
    )
    assert_sweep_contract(records)
    # overlapping allocation strategies: within tolerance intervals where
    # the same format is selected for all fractions, plans coincide
    # (Section IV-D's "data points overlap across different tolerance
    # allocation strategies")
    for tolerance in _TOLERANCES:
        at_tol = [r for r in records if r["tolerance"] == tolerance]
        formats = {r["fmt"] for r in at_tol}
        if len(formats) == 1:
            bounds = {round(r["predicted_bound"], 12) for r in at_tol}
            assert len(bounds) == 1
