"""Fig. 13: predicted bound + throughput vs user tolerance; SZ, L-inf.

The paper's key end-to-end observation — roughly 5x total speedup at a
QoI tolerance near 1e-3..1e-2, driven by FP16 quantization becoming
admissible and freeing tolerance for aggressive compression — is checked
here on the H2 workload.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from pipeutils import (
    SWEEP_HEADER,
    assert_sweep_contract,
    baseline_total_gbps,
    pipeline_sweep,
    sweep_rows,
)

_TOLERANCES = np.logspace(-4, -1, 5)
CODEC = "sz"
NORM = "linf"


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi", "eurosat"])
def test_fig13_pipeline(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    records = run_once(
        benchmark, lambda: pipeline_sweep(workload, CODEC, NORM, _TOLERANCES)
    )
    print_table(
        f"Fig. 13 ({workload_name}, {CODEC}, {NORM}): planned pipeline sweep",
        SWEEP_HEADER,
        sweep_rows(records),
    )
    assert_sweep_contract(records)


def test_fig13_fp16_turning_point(benchmark, h2):
    """Throughput accelerates once FP16 becomes admissible (Section IV-D)."""
    tolerances = np.logspace(-4, -1, 9)
    records = run_once(
        benchmark, lambda: pipeline_sweep(h2, CODEC, NORM, tolerances, fractions=(0.5,))
    )
    baseline = baseline_total_gbps(h2)
    rows = [
        [r["tolerance"], r["fmt"], r["total_gbps"], r["total_gbps"] / baseline]
        for r in records
    ]
    print_table(
        "Fig. 13 (h2combustion): total speedup vs tolerance",
        ["qoi tol", "format", "total GB/s", "speedup"],
        rows,
    )
    fp16_points = [r for r in records if r["fmt"] in ("fp16", "int8")]
    fp32_points = [r for r in records if r["fmt"] == "fp32"]
    assert fp16_points, "FP16 never became admissible"
    # the jump: every post-FP16 point beats every FP32 point
    assert min(r["total_gbps"] for r in fp16_points) > max(
        r["total_gbps"] for r in fp32_points
    )
    best_speedup = max(r["total_gbps"] for r in records) / baseline
    print(f"\nbest speedup {best_speedup:.2f}x (paper reports ~5x at QoI ~1e-3)")
    assert best_speedup > 3.0
