"""Extension benches: the paper's Section VI future-work items, measured.

* U-Net error flow — Eq. (3)-style bounds on a trained spectral U-Net
  (nested skip connections handled by the concat-join algebra);
* transformer local Lipschitz — the empirical estimator standing in for
  the not-yet-derived attention bound;
* compression-ratio prediction (ref. [28]) — model vs measured ratios.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro.compress import ErrorBoundMode, RatioEstimator, SZCompressor
from repro.core import ErrorFlowAnalyzer
from repro.core.sensitivity import empirical_lipschitz
from repro.models import unet
from repro.nn import Adam, MSELoss, Sequential, Trainer, TransformerBlock
from repro.quant import BF16, FP16, INT8, TF32, materialize, quantize_model


@pytest.fixture(scope="module")
def denoising_unet():
    rng = np.random.default_rng(5)
    model = unet(in_channels=1, out_channels=1, base_width=8, depth=2, rng=rng)
    grid = np.linspace(0, 6, 24)
    clean = np.stack(
        [
            np.sin(grid + phase)[None, :] * np.cos(grid * 0.7)[:, None]
            for phase in np.linspace(0, 3, 64)
        ]
    )[:, None].astype(np.float32)
    noisy = clean + 0.1 * rng.standard_normal(clean.shape).astype(np.float32)
    trainer = Trainer(
        model, MSELoss(), Adam(model.parameters(), lr=2e-3), spectral_weight=1e-4
    )
    trainer.fit(noisy, clean, epochs=25, batch_size=8, rng=rng)
    model.eval()
    return model, noisy


def test_unet_error_bounds(benchmark, denoising_unet):
    model, noisy = denoising_unet
    analyzer = ErrorFlowAnalyzer(model, n_input=24 * 24)
    x = noisy[:16]

    def compute():
        reference = materialize(model)(x)
        rows = []
        for fmt in (TF32, FP16, BF16, INT8):
            quantized = quantize_model(model, fmt)
            achieved = float(
                np.linalg.norm((quantized(x) - reference).reshape(len(x), -1), axis=1).max()
            )
            rows.append([fmt.name, achieved, analyzer.quantization_bound(fmt)])
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        "Extension: U-Net quantization bounds (Section VI architecture)",
        ["format", "achieved", "bound"],
        rows,
    )
    for fmt_name, achieved, bound in rows:
        assert achieved <= bound, f"{fmt_name} bound violated on the U-Net"
    by_format = {r[0]: r for r in rows}
    assert np.isclose(by_format["tf32"][2], by_format["fp16"][2], rtol=1e-6)
    assert by_format["int8"][2] > by_format["bf16"][2] > by_format["fp16"][2]


def test_transformer_empirical_lipschitz(benchmark):
    rng = np.random.default_rng(6)
    model = Sequential(TransformerBlock(16, 4, rng=rng))
    inputs = rng.uniform(-1, 1, (32, 8, 16)).astype(np.float32)
    targets = (0.5 * inputs + 0.5 * inputs.mean(axis=1, keepdims=True)).astype(np.float32)
    trainer = Trainer(model, MSELoss(), Adam(model.parameters(), lr=2e-3))
    trainer.fit(inputs, targets, epochs=15, batch_size=16, rng=rng)
    model.eval()

    def compute():
        return empirical_lipschitz(model, inputs[:8], rng=rng, n_probes=16)

    lipschitz = run_once(benchmark, compute)
    print(f"\ntrained transformer local Lipschitz estimate: {lipschitz:.3f}")
    # a residual pre-LN block should sit near gain ~1 on this task
    assert 0.2 < lipschitz < 50.0


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_ratio_model_vs_actual(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    fields = workload.dataset.fields

    def compute():
        estimator = RatioEstimator(fields)
        codec = SZCompressor()
        rows = []
        for tolerance in np.logspace(-5, -2, 6):
            predicted = estimator.ratio(float(tolerance))
            actual = codec.compress(
                fields, float(tolerance), ErrorBoundMode.ABS
            ).compression_ratio
            rows.append([float(tolerance), predicted, actual, predicted / actual])
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        f"Extension ({workload_name}): ratio model (ref. [28]) vs measured SZ",
        ["tolerance", "predicted", "actual", "pred/actual"],
        rows,
    )
    for __, predicted, actual, ratio in rows:
        assert 0.5 < ratio < 2.0, "prediction off by more than 2x"
