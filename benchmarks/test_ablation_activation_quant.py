"""Ablation: activation quantization (paper Section III-B remark).

Weight-only quantization is the paper's focus, but Section III-B notes
activation quantization "can be addressed similarly to compression error
by applying Equation (5), while excluding all layers preceding the
affected activation."  This bench quantizes hidden activations of the two
MLP workloads and checks that rule's bound against the achieved error,
alone and stacked on top of weight quantization.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro.quant import BF16, FP16, INT8, materialize, quantize_model
from repro.quant.activations import QuantizedActivationModel

_FORMATS = (FP16, BF16, INT8)


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_activation_quantization_bound(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    model = materialize(workload.qoi_model())
    model.eval()
    analyzer = workload.qoi_analyzer()
    samples = workload.dataset.test_inputs[:256]
    reference = model(samples)

    def compute():
        rows = []
        for fmt in _FORMATS:
            wrapped = QuantizedActivationModel(model, fmt)
            achieved = float(
                np.linalg.norm(wrapped(samples) - reference, axis=1).max()
            )
            bound = analyzer.activation_quantization_bound(fmt, activation_linf=1.0)
            rows.append([fmt.name, achieved, bound])
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        f"Ablation ({workload_name}): activation quantization (Section III-B)",
        ["format", "achieved", "bound"],
        rows,
    )
    for fmt_name, achieved, bound in rows:
        assert achieved <= bound, f"{fmt_name} activation bound violated"
    # FP16 activations are far cheaper in error than INT8
    by_format = {r[0]: r for r in rows}
    assert by_format["fp16"][1] < by_format["int8"][1]


def test_stacked_weight_and_activation_quantization(benchmark, workloads):
    """Both reductions together: errors compose additively in the bound."""
    workload = workloads["h2combustion"]
    model = workload.qoi_model()
    analyzer = workload.qoi_analyzer()
    samples = workload.dataset.test_inputs[:256]
    reference = materialize(model)(samples)

    def compute():
        weight_quantized = quantize_model(model, FP16)
        both = QuantizedActivationModel(weight_quantized.model, FP16)
        achieved = float(np.linalg.norm(both(samples) - reference, axis=1).max())
        bound = analyzer.quantization_bound(FP16) + analyzer.activation_quantization_bound(
            FP16, activation_linf=1.0
        )
        return achieved, bound

    achieved, bound = run_once(benchmark, compute)
    print(f"\nweights+activations FP16: achieved {achieved:.3e} <= bound {bound:.3e}")
    assert achieved <= bound
