"""Fig. 4: compression-error bound vs achieved QoI error, L2 norm.

Same experiment as Fig. 3 with per-sample L2 errors on both axes.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from figutils import (
    bound_line,
    compression_error_sweep,
    input_output_scales,
    samples_from_fields,
    variant_analyzers,
)

_INPUT_ERRORS = np.logspace(-6, -2, 5)
_NORM = "l2"


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi", "eurosat"])
def test_fig4_global_error(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    scales = input_output_scales(workload)
    analyzers = variant_analyzers(workload_name)

    def compute():
        return compression_error_sweep(workload, _INPUT_ERRORS, _NORM)

    points = run_once(benchmark, compute)
    x_grid = np.array(sorted({p["input_rel_err"] for p in points}))

    rows = []
    for tolerance in _INPUT_ERRORS:
        at_tol = [p for p in points if p["tolerance"] == tolerance]
        achieved = np.array([p["qoi_rel_err"] for p in at_tol])
        x_vals = np.array([p["input_rel_err"] for p in at_tol])
        geo = float(np.exp(np.mean(np.log(np.maximum(achieved, 1e-300)))))
        bounds = {
            variant: float(bound_line(analyzer, np.array([x_vals.max()]), _NORM, scales)[0])
            for variant, analyzer in analyzers.items()
        }
        rows.append(
            [tolerance, x_vals.max(), geo, achieved.max(), bounds["psn"], bounds["plain"], bounds["weight_decay"]]
        )
    print_table(
        f"Fig. 4 ({workload_name}): relative QoI error vs input error (L2)",
        ["input tol", "input rel L2", "achieved geo", "achieved max", "bound (psn)", "bound (plain)", "bound (wd)"],
        rows,
    )
    for row in rows:
        assert row[3] <= row[4] * (1 + 1e-9)
    assert rows[-1][4] < rows[-1][5]  # psn bound tighter than plain
    del x_grid


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_fig4_per_feature_error(benchmark, workloads, workload_name):
    """Right panels: per-feature L2 QoI error at relative input error 1e-5."""
    workload = workloads[workload_name]
    epsilon = 1e-5
    model = workload.qoi_model()
    model.eval()
    analyzer = workload.qoi_analyzer()

    def compute():
        from repro.compress import ErrorBoundMode, MGARDCompressor

        fields = workload.dataset.fields
        codec = MGARDCompressor()
        blob = codec.compress(fields, epsilon, ErrorBoundMode.ABS)
        reconstruction = codec.decompress(blob)
        samples_ref = samples_from_fields(workload, fields)
        samples_new = samples_from_fields(workload, reconstruction)
        delta_out = model(samples_new) - model(samples_ref)
        achieved = np.linalg.norm(delta_out, axis=0)  # per-feature L2 over samples
        input_l2 = float(
            np.linalg.norm((samples_new - samples_ref).reshape(len(samples_ref), -1), axis=1).max()
        )
        per_sample_achieved = np.abs(delta_out).max(axis=0)
        bounds = analyzer.per_feature_bounds(input_l2, None)
        return per_sample_achieved, bounds, achieved

    per_sample_achieved, bounds, __ = run_once(benchmark, compute)
    rows = [[f, per_sample_achieved[f], bounds[f]] for f in range(len(bounds))]
    print_table(
        f"Fig. 4 ({workload_name}): per-feature QoI error at input 1e-5 (L2)",
        ["feature", "achieved", "bound"],
        rows,
    )
    assert np.all(per_sample_achieved <= bounds)
