"""Ablations on codec design choices called out in DESIGN.md.

* SZ interpolation order — linear vs cubic vs dynamic selection (the
  "dynamic spline interpolation" of the paper's SZ reference [6]);
* MGARD level weighting ``s`` — how budget distribution across levels
  trades ratio for smoothness;
* ZFP fixed-rate vs fixed-accuracy operating modes.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro.compress import ErrorBoundMode, MGARDCompressor, SZCompressor, ZFPCompressor


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_sz_interpolation_ablation(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    fields = workload.dataset.fields

    def compute():
        rows = []
        for interpolation in ("linear", "cubic", "dynamic"):
            codec = SZCompressor(interpolation=interpolation)
            for tolerance in (1e-2, 1e-3, 1e-4):
                blob = codec.compress(fields, tolerance, ErrorBoundMode.ABS)
                rows.append([interpolation, tolerance, blob.compression_ratio])
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        f"Ablation ({workload_name}): SZ spline order vs compression ratio",
        ["interpolation", "tolerance", "ratio"],
        rows,
    )
    by_mode = {
        mode: [r[2] for r in rows if r[0] == mode]
        for mode in ("linear", "cubic", "dynamic")
    }
    # dynamic selection never loses meaningfully to either fixed order
    for index in range(3):
        best_fixed = max(by_mode["linear"][index], by_mode["cubic"][index])
        assert by_mode["dynamic"][index] >= best_fixed * 0.95


def test_mgard_s_weight_ablation(benchmark, workloads):
    fields = workloads["h2combustion"].dataset.fields

    def compute():
        rows = []
        for s_weight in (0.0, 0.25, 0.5, 1.0):
            codec = MGARDCompressor(s_weight=s_weight)
            blob = codec.compress(fields, 1e-3, ErrorBoundMode.ABS)
            reconstruction = codec.decompress(blob)
            achieved = float(np.abs(reconstruction - fields).max())
            rows.append([s_weight, blob.compression_ratio, achieved])
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        "Ablation (h2combustion): MGARD level weighting s",
        ["s_weight", "ratio", "achieved Linf"],
        rows,
    )
    for __, __, achieved in rows:
        assert achieved <= 1e-3


def test_zfp_fixed_rate_vs_fixed_accuracy(benchmark, workloads):
    fields = workloads["h2combustion"].dataset.fields

    def compute():
        codec = ZFPCompressor()
        rows = []
        for bits_per_value in (2.0, 4.0, 8.0, 16.0):
            blob = codec.compress_fixed_rate(fields, bits_per_value)
            reconstruction = codec.decompress(blob)
            achieved = float(np.abs(reconstruction - fields).max())
            rows.append([bits_per_value, blob.metadata["achieved_bpv"], achieved])
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        "Ablation (h2combustion): ZFP fixed-rate accuracy scaling",
        ["target bpv", "achieved bpv", "achieved Linf"],
        rows,
    )
    for target, achieved_bpv, __ in rows:
        assert achieved_bpv <= target
    errors = [r[2] for r in rows]
    assert errors == sorted(errors, reverse=True), "more bits must not hurt accuracy"
