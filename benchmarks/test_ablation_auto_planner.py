"""Ablation: automatic tolerance-allocation search (paper Section IV-D).

"Allocating a fixed proportion of the total tolerance to quantization
does not consistently yield an optimal strategy ... this highlights the
need for an optimization algorithm to automate the determination of the
optimal strategy."  The library implements that search
(:meth:`TolerancePlanner.auto_plan`); this bench verifies it dominates
every fixed-fraction strategy across the tolerance sweep.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from pipeutils import CODEC_CLASSES, exec_throughput_gbps
from repro import InferencePipeline, TolerancePlanner
from repro.perf import IOModel

_TOLERANCES = np.logspace(-3, -1, 4)
_FIXED_FRACTIONS = (0.1, 0.5, 0.9)


def _throughput_of_plan(workload, codec_name, plan):
    pipeline = InferencePipeline(workload.qoi_model(), CODEC_CLASSES[codec_name](), plan)
    blob = pipeline.store(workload.dataset.fields)
    io_gbps = IOModel().throughput_gbps(codec_name, blob.compression_ratio)
    return min(io_gbps, exec_throughput_gbps(workload, plan.fmt.name))


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi"])
def test_auto_plan_dominates_fixed_fractions(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    planner = TolerancePlanner(workload.qoi_analyzer())
    codec_name = "sz"

    def compute():
        rows = []
        for tolerance in _TOLERANCES:
            fixed = {
                fraction: _throughput_of_plan(
                    workload, codec_name, planner.plan(float(tolerance), quant_fraction=fraction)
                )
                for fraction in _FIXED_FRACTIONS
            }
            auto = planner.auto_plan(
                float(tolerance),
                lambda plan: _throughput_of_plan(workload, codec_name, plan),
            )
            auto_throughput = auto.metadata["predicted_throughput"]
            rows.append(
                [tolerance, fixed[0.1], fixed[0.5], fixed[0.9], auto_throughput,
                 auto.fmt.name, auto.quant_fraction]
            )
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        f"Ablation ({workload_name}): auto allocation vs fixed fractions (total GB/s)",
        ["qoi tol", "frac 0.1", "frac 0.5", "frac 0.9", "auto", "auto fmt", "auto frac"],
        rows,
    )
    for row in rows:
        best_fixed = max(row[1:4])
        assert row[4] >= best_fixed * 0.98, (
            f"auto ({row[4]:.2f}) lost to a fixed fraction ({best_fixed:.2f})"
        )
