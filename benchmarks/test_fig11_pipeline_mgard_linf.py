"""Fig. 11: predicted bound + throughput vs user tolerance; MGARD, L-inf.

The full planned pipeline (tolerance allocation -> format selection ->
compression -> quantized inference) swept over user tolerances and
quantization-allocation fractions of 10/50/90%, with MGARD as the
compression backend under a pointwise (L-infinity) QoI tolerance.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from pipeutils import (
    SWEEP_HEADER,
    assert_sweep_contract,
    baseline_total_gbps,
    pipeline_sweep,
    sweep_rows,
)

_TOLERANCES = np.logspace(-4, -1, 5)
CODEC = "mgard"
NORM = "linf"


@pytest.mark.parametrize("workload_name", ["h2combustion", "borghesi", "eurosat"])
def test_fig11_pipeline(benchmark, workloads, workload_name):
    workload = workloads[workload_name]
    records = run_once(
        benchmark, lambda: pipeline_sweep(workload, CODEC, NORM, _TOLERANCES)
    )
    print_table(
        f"Fig. 11 ({workload_name}, {CODEC}, {NORM}): planned pipeline sweep",
        SWEEP_HEADER,
        sweep_rows(records),
    )
    assert_sweep_contract(records)
    baseline = baseline_total_gbps(workload)
    best = max(r["total_gbps"] for r in records)
    print(f"\nbest end-to-end speedup: {best / baseline:.2f}x over {baseline:.2f} GB/s")
    if workload_name != "eurosat":  # the deep ResNet gain limits compression
        assert best / baseline > 2.0
