"""Fig. 9: data-ingestion (execution) throughput vs quantization format.

For the ResNet and MLP zoo, model execution throughput per numeric format
on the RTX 3080 Ti profile (the only device in the paper natively
supporting TF32 and BF16), plus the measured numpy wall-clock for the
FP32 reference point.

Paper shapes: FP16 yields up to 4.5x the FP32 throughput; INT8 is close
behind; TF32/BF16 bring only marginal gains.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro.models import ZOO_INPUT_SHAPES, build_model, model_flops
from repro.perf import ExecutionModel, RTX3080TI, measure_inference_seconds

_ZOO = ("resnet8", "resnet14", "resnet20", "mlp_s", "mlp_m", "mlp_l")
_FORMATS = ("fp32", "tf32", "bf16", "fp16", "int8")


def test_fig9_exec_throughput(benchmark):
    exec_model = ExecutionModel(RTX3080TI)

    def compute():
        rows = []
        for name in _ZOO:
            shape = ZOO_INPUT_SHAPES[name]
            model = build_model(name, rng=np.random.default_rng(0))
            flops = model_flops(model, shape)
            bytes_per_sample = int(np.prod(shape)) * 4
            row = [name]
            for fmt_name in _FORMATS:
                row.append(
                    exec_model.data_throughput_gbps(flops, bytes_per_sample, fmt_name)
                )
            rows.append(row)
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        "Fig. 9: execution throughput (GB/s ingested) by format, RTX 3080 Ti",
        ["model"] + list(_FORMATS),
        rows,
    )
    index = {fmt: i + 1 for i, fmt in enumerate(_FORMATS)}
    for row in rows:
        fp32, tf32, bf16, fp16, int8 = (row[index[f]] for f in _FORMATS)
        # FP16 delivers the paper's ~4.5x speedup over FP32
        assert fp16 / fp32 == pytest.approx(4.5, rel=1e-6)
        # INT8 is a large speedup too; TF32/BF16 are marginal
        assert int8 / fp32 > 3.5
        assert 1.0 < tf32 / fp32 < 1.6
        assert 1.0 < bf16 / fp32 < 1.6
    # smaller models ingest data faster (less compute per byte)
    by_name = {row[0]: row for row in rows}
    assert by_name["resnet8"][1] > by_name["resnet20"][1]
    assert by_name["mlp_s"][1] > by_name["mlp_l"][1]


def test_fig9_measured_fp32_reference(benchmark):
    """Measured numpy wall-clock anchoring the FP32 point of the figure."""
    model = build_model("mlp_m", rng=np.random.default_rng(0))

    def measure():
        seconds = measure_inference_seconds(model, (512,), batch_size=64, repeats=2)
        bytes_per_batch = 64 * 512 * 4
        return bytes_per_batch / seconds / 1e9

    throughput = run_once(benchmark, measure)
    print(f"\nmeasured numpy mlp_m FP32 ingestion: {throughput:.3f} GB/s")
    assert throughput > 0
