"""Fig. 2: share of inference time spent on load / preprocess / execute.

Reproduces the motivation figure: for ResNets of varying depth and the
mlp_s/m/l family, model execution consumes a growing share of total
pipeline time as FLOPs grow, while data loading dominates for the small
MLPs — the premise for combining I/O reduction *and* quantization.
"""

import numpy as np

from conftest import print_table, run_once
from repro import obs
from repro.models import ZOO_INPUT_SHAPES, build_model, model_flops
from repro.perf import ExecutionModel, RTX3080TI, StageBreakdown, Stopwatch, measure_inference_seconds

_ZOO = ("resnet8", "resnet14", "resnet20", "mlp_s", "mlp_m", "mlp_l")


def test_fig2_time_breakdown(benchmark):
    exec_model = ExecutionModel(RTX3080TI)

    def compute():
        rows = []
        for name in _ZOO:
            shape = ZOO_INPUT_SHAPES[name]
            rng = np.random.default_rng(0)
            model = build_model(name, rng=rng)
            flops = model_flops(model, shape)
            bytes_per_sample = int(np.prod(shape)) * 4
            breakdown = exec_model.stage_breakdown(flops, bytes_per_sample, n_samples=10000)
            fractions = breakdown.fractions()
            rows.append(
                [
                    name,
                    flops / 1e6,
                    100 * fractions["load"],
                    100 * fractions["preprocess"],
                    100 * fractions["execute"],
                ]
            )
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        "Fig. 2: inference time breakdown (percent)",
        ["model", "MFLOPs", "load %", "preprocess %", "execute %"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # deeper ResNets spend a larger share executing
    assert by_name["resnet20"][4] > by_name["resnet8"][4]
    # the large MLP is execution-heavier than the small one
    assert by_name["mlp_l"][4] > by_name["mlp_s"][4]
    # small MLPs are dominated by data movement (load + preprocess)
    assert by_name["mlp_s"][2] + by_name["mlp_s"][3] > by_name["mlp_s"][4]
    # percentages sum to 100
    for row in rows:
        assert abs(sum(row[2:]) - 100.0) < 1e-6


def test_fig2_measured_numpy_execution(benchmark):
    """Real wall-clock of the numpy substrate (the measured data point).

    The measurement is trace-backed: ``measure_inference_seconds`` emits
    spans, a :class:`Stopwatch` is rebuilt from those spans, and the
    figure's :class:`StageBreakdown` is derived from the stopwatch — the
    paper figure and production telemetry read the same span data.
    """
    rng = np.random.default_rng(0)
    model = build_model("mlp_s", rng=rng)

    def measured():
        with obs.capture() as (tracer, __metrics):
            seconds = measure_inference_seconds(model, (256,), batch_size=64, repeats=2)
        return seconds, tracer

    seconds, tracer = benchmark.pedantic(measured, rounds=1, iterations=1)
    assert seconds > 0

    # The spans carry the same measurement the function returned...
    execute_spans = tracer.find("execute")
    assert len(execute_spans) == 2
    assert min(s.duration_s for s in execute_spans) <= seconds <= max(
        s.duration_s for s in execute_spans
    ) or abs(seconds - np.median([s.duration_s for s in execute_spans])) < 5e-3

    # ...and rebuild into the Fig. 2 data structures without re-timing.
    watch = Stopwatch.from_spans(tracer)
    assert watch.phases["execute"] > 0
    breakdown = StageBreakdown.from_phases(watch.phases)
    assert breakdown.execute_seconds == watch.phases["execute"]
    assert breakdown.fractions()["execute"] == 1.0  # pure-execution microbench
