"""Fig. 2: share of inference time spent on load / preprocess / execute.

Reproduces the motivation figure: for ResNets of varying depth and the
mlp_s/m/l family, model execution consumes a growing share of total
pipeline time as FLOPs grow, while data loading dominates for the small
MLPs — the premise for combining I/O reduction *and* quantization.
"""

import numpy as np

from conftest import print_table, run_once
from repro.models import ZOO_INPUT_SHAPES, build_model, model_flops
from repro.perf import ExecutionModel, RTX3080TI, measure_inference_seconds

_ZOO = ("resnet8", "resnet14", "resnet20", "mlp_s", "mlp_m", "mlp_l")


def test_fig2_time_breakdown(benchmark):
    exec_model = ExecutionModel(RTX3080TI)

    def compute():
        rows = []
        for name in _ZOO:
            shape = ZOO_INPUT_SHAPES[name]
            rng = np.random.default_rng(0)
            model = build_model(name, rng=rng)
            flops = model_flops(model, shape)
            bytes_per_sample = int(np.prod(shape)) * 4
            breakdown = exec_model.stage_breakdown(flops, bytes_per_sample, n_samples=10000)
            fractions = breakdown.fractions()
            rows.append(
                [
                    name,
                    flops / 1e6,
                    100 * fractions["load"],
                    100 * fractions["preprocess"],
                    100 * fractions["execute"],
                ]
            )
        return rows

    rows = run_once(benchmark, compute)
    print_table(
        "Fig. 2: inference time breakdown (percent)",
        ["model", "MFLOPs", "load %", "preprocess %", "execute %"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # deeper ResNets spend a larger share executing
    assert by_name["resnet20"][4] > by_name["resnet8"][4]
    # the large MLP is execution-heavier than the small one
    assert by_name["mlp_l"][4] > by_name["mlp_s"][4]
    # small MLPs are dominated by data movement (load + preprocess)
    assert by_name["mlp_s"][2] + by_name["mlp_s"][3] > by_name["mlp_s"][4]
    # percentages sum to 100
    for row in rows:
        assert abs(sum(row[2:]) - 100.0) < 1e-6


def test_fig2_measured_numpy_execution(benchmark):
    """Real wall-clock of the numpy substrate (the measured data point)."""
    rng = np.random.default_rng(0)
    model = build_model("mlp_s", rng=rng)
    seconds = benchmark.pedantic(
        lambda: measure_inference_seconds(model, (256,), batch_size=64, repeats=2),
        rounds=1,
        iterations=1,
    )
    assert seconds > 0
